package polybench

import (
	"fmt"
	"regexp"
	"strconv"

	"repro/internal/driver"
	"repro/internal/ir"
	"repro/internal/parallel"
)

// Size selects the problem-size scale of a benchmark run. The seed
// sources carry mini dimensions tuned for CI latency; std and large
// multiply every integer size #define, growing the work of the
// quadratic/cubic kernels by roughly 10-100x — enough for engine
// throughput comparisons to dominate startup costs.
type Size string

const (
	SizeMini  Size = "mini"  // the sources' own dimensions (CI default)
	SizeStd   Size = "std"   // linear dimensions x4 (benchmarking)
	SizeLarge Size = "large" // linear dimensions x8
)

// ParseSize validates a size name from a flag or environment variable.
func ParseSize(s string) (Size, error) {
	switch Size(s) {
	case "", SizeMini:
		return SizeMini, nil
	case SizeStd, SizeLarge:
		return Size(s), nil
	}
	return "", fmt.Errorf("unknown problem size %q (want mini, std, or large)", s)
}

// Factor is the multiplier applied to every size #define.
func (s Size) Factor() int {
	switch s {
	case SizeStd:
		return 4
	case SizeLarge:
		return 8
	}
	return 1
}

// sizeDefine matches `#define NAME <int>` lines — the only way the
// benchmark sources express problem dimensions.
var sizeDefine = regexp.MustCompile(`(?m)^(\s*#define\s+[A-Za-z_][A-Za-z0-9_]*\s+)([0-9]+)\s*$`)

// ScaleSource multiplies every integer size #define in src by factor.
// factor <= 1 returns src unchanged.
func ScaleSource(src string, factor int) string {
	if factor <= 1 {
		return src
	}
	return sizeDefine.ReplaceAllStringFunc(src, func(line string) string {
		m := sizeDefine.FindStringSubmatch(line)
		n, _ := strconv.Atoi(m[2])
		return m[1] + strconv.Itoa(n*factor)
	})
}

// SeqAt is the sequential source at the given problem size.
func (b *Benchmark) SeqAt(size Size) string {
	return ScaleSource(b.Seq, size.Factor())
}

// sizedName keys the session memo: mini keeps the benchmark's plain
// name (sharing cache entries with unsized callers), scaled sizes get a
// distinct suffix so the memo never conflates dimensions.
func (b *Benchmark) sizedName(size Size) string {
	if size.Factor() <= 1 {
		return b.Name
	}
	return b.Name + "@" + string(size)
}

// CompileParallelIRSized is CompileParallelIRWith at a problem size:
// sequential source scaled, then O2 and automatic parallelization.
func (b *Benchmark) CompileParallelIRSized(s *driver.Session, size Size) (*ir.Module, *parallel.Result, error) {
	m, res, err := s.ParallelIR(b.sizedName(size), b.SeqAt(size))
	if err != nil {
		return nil, nil, fmt.Errorf("%s@%s: %w", b.Name, size, err)
	}
	if err := m.Verify(); err != nil {
		return nil, nil, fmt.Errorf("%s@%s after parallelize: %w", b.Name, size, err)
	}
	return m, res, nil
}
