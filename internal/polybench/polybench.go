// Package polybench carries the 16 PolyBench/C benchmarks the paper
// evaluates (§5.1.1), written in the toolchain's C subset, with problem
// sizes scaled to interpreter throughput.
//
// Each benchmark provides four source variants:
//
//   - Seq: the sequential original (the decompilation pipeline's input);
//   - Ref: the reference code of §5.1.2 — the sequential source with
//     OpenMP pragmas manually placed exactly where the parallelizing
//     compiler parallelizes, i.e. the most natural translation a
//     decompiler could produce (BLEU reference, Table 4 LoC baseline);
//   - Manual: the programmer-only parallelization standing in for the
//     Cavazos-lab versions [20] (kernel loops annotated, support loops
//     and restructuring opportunities left on the table);
//   - Collab: the collaborative result of Figure 9 — the
//     SPLENDID-decompiled compiler parallelization plus the few manual
//     lines (loop distribution for atax/bicg, extra DOALL pragmas) the
//     programmer adds on top. Empty for benchmarks outside the paper's
//     7-benchmark case study.
//
// RunFuncs lists the entry points to execute in order (an init function
// followed by kernels); Outputs names the globals checksummed to verify
// that every variant computes the same result.
package polybench

import "fmt"

// Benchmark is one PolyBench program with its parallelization variants.
type Benchmark struct {
	Name string

	Seq    string
	Ref    string
	Manual string
	Collab string

	// CollabLoC is the number of manually written lines added on top of
	// the SPLENDID output to form Collab (the annotations in Figure 9).
	CollabLoC int

	RunFuncs []string
	// KernelFuncs is the timed subset of RunFuncs (the computation, not
	// the data initialization).
	KernelFuncs []string
	Outputs     []string

	// PaperT3 holds the paper's Table 3 row where legible:
	// programmer-parallelized, compiler-parallelized, total, eliminated.
	// (The published table is partially garbled in our source; rows are
	// best-effort and EXPERIMENTS.md compares against measured values.)
	PaperT3 [4]int
}

var registry []*Benchmark

func register(b *Benchmark) *Benchmark {
	registry = append(registry, b)
	return b
}

// All returns the 16 benchmarks in the paper's Table 3/4 order.
func All() []*Benchmark { return registry }

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names lists benchmark names in order.
func Names() []string {
	var out []string
	for _, b := range registry {
		out = append(out, b.Name)
	}
	return out
}

func init() {
	if len(registry) != 16 {
		panic(fmt.Sprintf("polybench: %d benchmarks registered, want 16", len(registry)))
	}
}
