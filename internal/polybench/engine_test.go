package polybench

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/ir"
)

// TestEngineDeterminism is the golden engine-parity gate: every
// PolyBench kernel (compiled through O2 + automatic parallelization)
// must produce bitwise-identical output arrays and identical
// work/span totals on the tree-walker and the bytecode register VM,
// single-threaded and with an 8-thread team. Any divergence — a
// lowering bug, a fused superinstruction rounding differently, a
// misplaced step charge — fails here before it can contaminate the
// differential oracle.
func TestEngineDeterminism(t *testing.T) {
	s := driver.New(driver.Options{})
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m, _, err := b.CompileParallelIRWith(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{1, 8} {
				tree, err := b.RunWith(m, interp.Options{NumThreads: threads})
				if err != nil {
					t.Fatalf("tree %d threads: %v", threads, err)
				}
				byt, err := driver.EngineFor("bytecode")
				if err != nil {
					t.Fatal(err)
				}
				bvm, err := b.RunWith(m, interp.Options{NumThreads: threads, Body: byt})
				if err != nil {
					t.Fatalf("bytecode %d threads: %v", threads, err)
				}
				if eq, diff := b.OutputsEqual(tree, bvm); !eq {
					t.Errorf("%d threads: outputs differ: %s", threads, diff)
				}
				if tree.Steps() != bvm.Steps() {
					t.Errorf("%d threads: work differs: tree %d vs bytecode %d",
						threads, tree.Steps(), bvm.Steps())
				}
				if tree.SimSteps() != bvm.SimSteps() {
					t.Errorf("%d threads: span differs: tree %d vs bytecode %d",
						threads, tree.SimSteps(), bvm.SimSteps())
				}
			}
		})
	}
}

// TestEngineDeterminismSchedules extends the engine-parity gate to the
// dispatch-scheduled worksharing kinds on the triangular imbalanced
// kernel. The contract is weaker than the static gate on purpose:
// outputs must be bitwise-identical across engines and thread counts
// under every schedule (the loop is DOALL, so any chunk-to-worker
// assignment computes the same cells), but work/span totals are only
// compared at 1 thread — guided's cursor and auto's stealing make the
// multi-thread chunk assignment timing-dependent, which legitimately
// moves step counts between workers.
func TestEngineDeterminismSchedules(t *testing.T) {
	s := driver.New(driver.Options{})
	byt, err := driver.EngineFor("bytecode")
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range ImbalancedSchedules {
		b := ImbalancedKernel(sched)
		t.Run(b.Name, func(t *testing.T) {
			m, err := CompileVariantWith(s, b.Seq, b.Name)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := b.RunWith(m, interp.Options{NumThreads: 1})
			if err != nil {
				t.Fatalf("tree 1 thread: %v", err)
			}
			for _, threads := range []int{1, 8} {
				tree, err := b.RunWith(m, interp.Options{NumThreads: threads})
				if err != nil {
					t.Fatalf("tree %d threads: %v", threads, err)
				}
				bvm, err := b.RunWith(m, interp.Options{NumThreads: threads, Body: byt})
				if err != nil {
					t.Fatalf("bytecode %d threads: %v", threads, err)
				}
				if eq, diff := b.OutputsEqual(tree, bvm); !eq {
					t.Errorf("%d threads: engines differ: %s", threads, diff)
				}
				if eq, diff := b.OutputsEqual(ref, tree); !eq {
					t.Errorf("%d threads vs 1 thread: outputs differ: %s", threads, diff)
				}
				if threads == 1 {
					if tree.Steps() != bvm.Steps() {
						t.Errorf("1 thread: work differs: tree %d vs bytecode %d",
							tree.Steps(), bvm.Steps())
					}
					if tree.SimSteps() != bvm.SimSteps() {
						t.Errorf("1 thread: span differs: tree %d vs bytecode %d",
							tree.SimSteps(), bvm.SimSteps())
					}
				}
			}
		})
	}
}

// TestScaleSource pins the size knob's rewrite: integer #define lines
// scale by the factor, everything else (expressions, code) is left
// alone, and mini is the identity.
func TestScaleSource(t *testing.T) {
	src := "#define N 220\n#define TSTEPS 16\ndouble A[N][N];\nint k = 7;\n"
	got := ScaleSource(src, 4)
	want := "#define N 880\n#define TSTEPS 64\ndouble A[N][N];\nint k = 7;\n"
	if got != want {
		t.Errorf("ScaleSource x4:\ngot  %q\nwant %q", got, want)
	}
	if ScaleSource(src, 1) != src {
		t.Errorf("factor 1 must be identity")
	}
	if SizeMini.Factor() != 1 || SizeStd.Factor() != 4 || SizeLarge.Factor() != 8 {
		t.Errorf("unexpected size factors: %d %d %d",
			SizeMini.Factor(), SizeStd.Factor(), SizeLarge.Factor())
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Errorf("ParseSize(huge) should fail")
	}
	if sz, err := ParseSize(""); err != nil || sz != SizeMini {
		t.Errorf("ParseSize(\"\") = %v, %v; want mini", sz, err)
	}
}

// TestSizedCompileDistinct checks scaled compilation flows through the
// session memo under a distinct key: std dimensions really grow the
// module's global arrays rather than hitting the mini cache entry.
func TestSizedCompileDistinct(t *testing.T) {
	s := driver.New(driver.Options{})
	b := ByName("atax")
	mini, _, err := b.CompileParallelIRSized(s, SizeMini)
	if err != nil {
		t.Fatal(err)
	}
	std, _, err := b.CompileParallelIRSized(s, SizeStd)
	if err != nil {
		t.Fatal(err)
	}
	var miniCells, stdCells int
	for _, g := range mini.Globals {
		if g.Nam == "x" {
			miniCells = ir.SizeOfElems(g.Elem)
		}
	}
	for _, g := range std.Globals {
		if g.Nam == "x" {
			stdCells = ir.SizeOfElems(g.Elem)
		}
	}
	if stdCells != 4*miniCells {
		t.Errorf("std @x has %d cells, want 4x mini's %d", stdCells, miniCells)
	}
}
