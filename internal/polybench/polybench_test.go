package polybench

import (
	"testing"

	"repro/internal/splendid"
)

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 16 {
		t.Fatalf("benchmarks = %d, want 16", len(All()))
	}
	want := map[string]bool{
		"2mm": true, "3mm": true, "adi": true, "atax": true, "bicg": true,
		"doitgen": true, "fdtd-2d": true, "floyd-warshall": true,
		"gemm": true, "gemver": true, "gesummv": true,
		"jacobi-1d-imper": true, "jacobi-2d-imper": true,
		"mvt": true, "syr2k": true, "syrk": true,
	}
	for _, b := range All() {
		if !want[b.Name] {
			t.Errorf("unexpected benchmark %q", b.Name)
		}
		delete(want, b.Name)
		if b.Seq == "" || b.Ref == "" || b.Manual == "" {
			t.Errorf("%s: missing a source variant", b.Name)
		}
		if len(b.RunFuncs) == 0 || len(b.KernelFuncs) == 0 || len(b.Outputs) == 0 {
			t.Errorf("%s: missing run metadata", b.Name)
		}
	}
	for name := range want {
		t.Errorf("missing benchmark %q", name)
	}
	collab := 0
	for _, b := range All() {
		if b.Collab != "" {
			collab++
			if b.CollabLoC == 0 {
				t.Errorf("%s: collaborative variant without LoC annotation", b.Name)
			}
		}
	}
	if collab != 7 {
		t.Errorf("collaborative subjects = %d, want 7 (paper Figure 9)", collab)
	}
}

// TestAllVariantsCompile compiles every variant of every benchmark.
func TestAllVariantsCompile(t *testing.T) {
	for _, b := range All() {
		for _, v := range []struct{ tag, src string }{
			{"seq", b.Seq}, {"ref", b.Ref}, {"manual", b.Manual}, {"collab", b.Collab},
		} {
			if v.src == "" {
				continue
			}
			if _, err := CompileVariant(v.src, b.Name+"/"+v.tag); err != nil {
				t.Errorf("%s %s: %v", b.Name, v.tag, err)
			}
		}
	}
}

// TestVariantsAgreeSequentially runs every variant with one thread and
// requires bitwise-identical outputs (the variants differ only in
// parallel structure, never in arithmetic).
func TestVariantsAgreeSequentially(t *testing.T) {
	for _, b := range All() {
		seqM, err := CompileVariant(b.Seq, b.Name)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		ref, err := b.Run(seqM, 1)
		if err != nil {
			t.Fatalf("%s seq: %v", b.Name, err)
		}
		for _, v := range []struct{ tag, src string }{
			{"ref", b.Ref}, {"manual", b.Manual}, {"collab", b.Collab},
		} {
			if v.src == "" {
				continue
			}
			m, err := CompileVariant(v.src, b.Name+"/"+v.tag)
			if err != nil {
				t.Fatalf("%s %s: %v", b.Name, v.tag, err)
			}
			mach, err := b.Run(m, 1)
			if err != nil {
				t.Fatalf("%s %s run: %v", b.Name, v.tag, err)
			}
			if ok, diff := b.OutputsEqual(ref, mach); !ok {
				t.Errorf("%s %s diverges sequentially: %s", b.Name, v.tag, diff)
			}
		}
	}
}

// TestParallelCorrectness runs the reference and collaborative variants
// with several threads against the sequential result.
func TestParallelCorrectness(t *testing.T) {
	for _, b := range All() {
		seqM, err := CompileVariant(b.Seq, b.Name)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		ref, err := b.Run(seqM, 1)
		if err != nil {
			t.Fatalf("%s seq: %v", b.Name, err)
		}
		for _, v := range []struct{ tag, src string }{
			{"ref", b.Ref}, {"collab", b.Collab},
		} {
			if v.src == "" {
				continue
			}
			m, err := CompileVariant(v.src, b.Name+"/"+v.tag)
			if err != nil {
				t.Fatal(err)
			}
			mach, err := b.Run(m, 4)
			if err != nil {
				t.Fatalf("%s %s parallel: %v", b.Name, v.tag, err)
			}
			if ok, diff := b.OutputsEqual(ref, mach); !ok {
				t.Errorf("%s %s parallel diverges: %s", b.Name, v.tag, diff)
			}
		}
	}
}

// TestAutoParallelizePipeline pushes each benchmark through -O2 and the
// parallelizer and checks that results still match the sequential run,
// in parallel execution.
func TestAutoParallelizePipeline(t *testing.T) {
	totalParallelized := 0
	for _, b := range All() {
		m, res, err := b.CompileParallelIR()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, n := range res.Parallelized {
			totalParallelized += n
		}
		seqM, _ := CompileVariant(b.Seq, b.Name)
		ref, err := b.Run(seqM, 1)
		if err != nil {
			t.Fatal(err)
		}
		mach, err := b.Run(m, 4)
		if err != nil {
			t.Fatalf("%s parallelized run: %v", b.Name, err)
		}
		if ok, diff := b.OutputsEqual(ref, mach); !ok {
			t.Errorf("%s: auto-parallelized output diverges: %s", b.Name, diff)
		}
	}
	// The suite as a whole must be heavily parallelizable (paper Table 3
	// reports 37 compiler-parallelized loops at the source level).
	if totalParallelized < 16 {
		t.Errorf("compiler parallelized only %d loops across the suite", totalParallelized)
	}
}

// TestSplendidDecompilesSuite decompiles every benchmark's parallel IR
// and recompiles the result — the portability property, suite-wide.
func TestSplendidDecompilesSuite(t *testing.T) {
	for _, b := range All() {
		m, _, err := b.CompileParallelIR()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res, err := splendid.Decompile(m, splendid.Full())
		if err != nil {
			t.Fatalf("%s: decompile: %v", b.Name, err)
		}
		rec, err := CompileVariant(res.C, b.Name+"/splendid")
		if err != nil {
			t.Fatalf("%s: SPLENDID output does not recompile: %v\n%s", b.Name, err, res.C)
		}
		seqM, _ := CompileVariant(b.Seq, b.Name)
		ref, err := b.Run(seqM, 1)
		if err != nil {
			t.Fatal(err)
		}
		mach, err := b.Run(rec, 4)
		if err != nil {
			t.Fatalf("%s: recompiled SPLENDID run: %v\n%s", b.Name, err, res.C)
		}
		if ok, diff := b.OutputsEqual(ref, mach); !ok {
			t.Errorf("%s: recompiled SPLENDID output diverges: %s", b.Name, diff)
		}
	}
}

func TestPragmaCount(t *testing.T) {
	if n := PragmaCount(gemm.Manual); n != 1 {
		t.Errorf("gemm manual pragmas = %d, want 1", n)
	}
	if n := PragmaCount(gemm.Seq); n != 0 {
		t.Errorf("gemm seq pragmas = %d, want 0", n)
	}
	if n := PragmaCount(gemver.Manual); n != 3 {
		t.Errorf("gemver manual pragmas = %d, want 3", n)
	}
}
