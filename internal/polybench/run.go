package polybench

import (
	"fmt"
	"math"

	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parallel"
)

// defaultSession is the process-wide driver session package-level helpers
// compile through; its memo makes repeated variant compilation (tests,
// the experiments harness) cheap.
var defaultSession = driver.New(driver.Options{})

// CompileVariant compiles one of the benchmark's source variants
// (sequential, reference, manual, or collaborative) through the frontend
// and the O2 pipeline. OpenMP pragmas in the source lower to runtime
// calls, so the result runs in parallel on a multi-threaded machine.
func CompileVariant(src, name string) (*ir.Module, error) {
	return CompileVariantWith(defaultSession, src, name)
}

// CompileVariantWith is CompileVariant through a caller-owned session.
func CompileVariantWith(s *driver.Session, src, name string) (*ir.Module, error) {
	m, err := s.OptimizedIR(name, src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return m, nil
}

// CompileParallelIR builds the decompilation input of the paper's
// pipeline: sequential source, -O2, automatic parallelization. The
// parallelizer's report is returned for Table 3.
func (b *Benchmark) CompileParallelIR() (*ir.Module, *parallel.Result, error) {
	return b.CompileParallelIRWith(defaultSession)
}

// CompileParallelIRWith is CompileParallelIR through a caller-owned
// session — the session's memo makes the O2+parallelize prefix a cache
// hit when several experiment variants fork from the same input.
func (b *Benchmark) CompileParallelIRWith(s *driver.Session) (*ir.Module, *parallel.Result, error) {
	m, res, err := s.ParallelIR(b.Name, b.Seq)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if err := m.Verify(); err != nil {
		return nil, nil, fmt.Errorf("%s after parallelize: %w", b.Name, err)
	}
	return m, res, nil
}

// Run executes the benchmark's functions on a fresh machine and returns
// it for inspection.
func (b *Benchmark) Run(m *ir.Module, threads int) (*interp.Machine, error) {
	return b.RunWith(m, interp.Options{NumThreads: threads})
}

// RunWith is Run with full control over the machine options — the
// observability harnesses use it to attach the parallel-region profiler
// (Profile), the dynamic DOALL conflict checker (CheckRaces), or a
// telemetry context to a kernel execution.
func (b *Benchmark) RunWith(m *ir.Module, opts interp.Options) (*interp.Machine, error) {
	mach := interp.NewMachine(m, opts)
	for _, fn := range b.RunFuncs {
		if _, err := mach.Run(fn); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", b.Name, fn, err)
		}
	}
	return mach, nil
}

// Checksum folds the benchmark's output arrays into one float64 (bitwise
// deterministic: the fold is a fixed-order sum of bit-pattern-derived
// values, so two runs computing identical cells produce identical sums).
func (b *Benchmark) Checksum(mach *interp.Machine) float64 {
	var h uint64 = 1469598103934665603
	for _, g := range b.Outputs {
		mem := mach.GlobalMem(g)
		if mem == nil {
			continue
		}
		for _, c := range mem.Cells {
			bits := math.Float64bits(c.F)
			h ^= bits
			h *= 1099511628211
		}
	}
	return float64(h % (1 << 52))
}

// OutputsEqual reports whether two runs produced bitwise-identical
// output arrays, returning the first difference for diagnostics.
func (b *Benchmark) OutputsEqual(a, c *interp.Machine) (bool, string) {
	for _, g := range b.Outputs {
		ma, mc := a.GlobalMem(g), c.GlobalMem(g)
		if ma == nil || mc == nil {
			return false, fmt.Sprintf("missing global %s", g)
		}
		if len(ma.Cells) != len(mc.Cells) {
			return false, fmt.Sprintf("%s: size %d vs %d", g, len(ma.Cells), len(mc.Cells))
		}
		for i := range ma.Cells {
			if math.Float64bits(ma.Cells[i].F) != math.Float64bits(mc.Cells[i].F) {
				return false, fmt.Sprintf("%s[%d]: %v vs %v", g, i, ma.Cells[i].F, mc.Cells[i].F)
			}
		}
	}
	return true, ""
}

// PragmaCount counts the worksharing pragmas in a source variant — the
// "loops parallelized by the programmer" statistic of Table 3.
func PragmaCount(src string) int {
	n := 0
	for i := 0; i+12 <= len(src); i++ {
		if src[i:i+11] == "#pragma omp" {
			rest := src[i+11:]
			if len(rest) > 4 && (containsAt(rest, " for") || containsAt(rest, " parallel for")) {
				n++
			}
		}
	}
	return n
}

func containsAt(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
