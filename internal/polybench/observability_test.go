package polybench

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/omp"
	"repro/internal/parallel"
)

// parallelizedLoops sums the parallelizer's per-function loop counts.
func parallelizedLoops(res *parallel.Result) int {
	n := 0
	for _, c := range res.Parallelized {
		n += c
	}
	return n
}

// usesAtomicCombine reports whether the module calls any of the
// serialized __kmpc_atomic_* reduction combiners — the path whose
// cross-thread combine order the determinism golden must cover.
func usesAtomicCombine(m *ir.Module) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if _, ok := omp.IsAtomicCombine(in); ok {
					return true
				}
			}
		}
	}
	return false
}

// TestGoldenDeterminismAcrossThreadCounts is the runtime determinism
// golden: every auto-parallelized kernel must produce bitwise-identical
// outputs at -threads 1 and -threads 8, including the reduction kernels
// whose parallel combine goes through the IsAtomicCombine runtime calls
// (the suite's inputs are exactly representable, so even floating-point
// combines must not depend on arrival order).
func TestGoldenDeterminismAcrossThreadCounts(t *testing.T) {
	for _, b := range All() {
		m, _, err := b.CompileParallelIR()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		one, err := b.Run(m, 1)
		if err != nil {
			t.Fatalf("%s threads=1: %v", b.Name, err)
		}
		eight, err := b.Run(m, 8)
		if err != nil {
			t.Fatalf("%s threads=8: %v", b.Name, err)
		}
		if ok, diff := b.OutputsEqual(one, eight); !ok {
			t.Errorf("%s: threads=1 and threads=8 outputs differ: %s", b.Name, diff)
		}
		if c1, c8 := b.Checksum(one), b.Checksum(eight); c1 != c8 {
			t.Errorf("%s: checksums differ across thread counts: %v vs %v", b.Name, c1, c8)
		}
	}
}

// reductionSource carries a scalar sum the parallelizer must lower
// through the __kmpc_atomic_* combiner path. Values are integral, so
// every partial sum is exact and the combine order cannot change the
// result — the precondition for a bitwise determinism golden over a
// floating-point reduction.
const reductionSource = `
double A[4000];
double Sum[1];

void init() {
  for (long i = 0; i < 4000; i++) {
    A[i] = i % 9;
  }
}
void kernel_sum() {
  double s = 0.0;
  for (long i = 0; i < 4000; i++) {
    s = s + A[i];
  }
  Sum[0] = s;
}
`

// TestGoldenDeterminismReduction covers what the suite kernels do not:
// a parallelized scalar reduction whose workers combine via the
// serialized atomic runtime calls (omp.IsAtomicCombine paths). The
// result must be bitwise identical at -threads 1 and -threads 8, and
// the conflict checker must treat the combiner as synchronization.
func TestGoldenDeterminismReduction(t *testing.T) {
	red := &Benchmark{
		Name:     "reduction-sum",
		RunFuncs: []string{"init", "kernel_sum"},
		Outputs:  []string{"Sum"},
	}
	m, res, err := defaultSession.ParallelIR(red.Name, reductionSource)
	if err != nil {
		t.Fatal(err)
	}
	if parallelizedLoops(res) == 0 {
		t.Fatal("reduction loop was not parallelized")
	}
	if !usesAtomicCombine(m) {
		t.Fatal("parallelized reduction does not call an atomic combiner; golden lost its IsAtomicCombine coverage")
	}
	one, err := red.Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := red.RunWith(m, interp.Options{NumThreads: 8, CheckRaces: true})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := red.OutputsEqual(one, eight); !ok {
		t.Errorf("reduction differs across thread counts: %s", diff)
	}
	// 4000 iterations of i%9 sum to 15990 exactly.
	if got := eight.GlobalMem("Sum").Cells[0].F; got != 15990 {
		t.Errorf("Sum = %v, want 15990", got)
	}
	if r := eight.Races(); !r.Clean() {
		t.Errorf("atomic reduction flagged by conflict checker: %+v", r.Conflicts)
	}
}

// TestStaticDOALLsRunClean is the dynamic half of the DOALL verdict
// check: every region the static dependence test accepted must execute
// without a single cross-thread conflict, and with zero contradictions
// between the dynamic and static verdicts, across the whole suite.
func TestStaticDOALLsRunClean(t *testing.T) {
	checkedRegions := int64(0)
	for _, b := range All() {
		m, res, err := b.CompileParallelIR()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		mach, err := b.RunWith(m, interp.Options{NumThreads: 4, CheckRaces: true})
		if err != nil {
			t.Fatalf("%s race-checked run: %v", b.Name, err)
		}
		r := mach.Races()
		if r == nil {
			t.Fatalf("%s: no race report", b.Name)
		}
		if !r.Clean() {
			t.Errorf("%s: statically accepted DOALLs raced: %v", b.Name, r.Conflicts)
		}
		if cs := r.CrossCheck(m); len(cs) != 0 {
			t.Errorf("%s: static/dynamic verdicts disagree: %v", b.Name, cs)
		}
		if parallelizedLoops(res) > 0 && r.RegionsChecked == 0 {
			t.Errorf("%s: parallelized but no region was checked", b.Name)
		}
		checkedRegions += r.RegionsChecked
	}
	if checkedRegions == 0 {
		t.Fatal("conflict checker saw zero parallel regions across the suite")
	}
}

// TestProfiledSuiteRun exercises the profiler over a real kernel: region
// rows must account for every microtask fork and per-thread iteration
// totals must cover the iteration spaces consistently across threads.
func TestProfiledSuiteRun(t *testing.T) {
	b := All()[0]
	m, _, err := b.CompileParallelIR()
	if err != nil {
		t.Fatal(err)
	}
	mach, err := b.RunWith(m, interp.Options{NumThreads: 4, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := mach.Profile()
	if p == nil || len(p.Regions) == 0 {
		t.Fatalf("profile = %+v, want regions", p)
	}
	for _, r := range p.Regions {
		if r.Forks <= 0 || r.WorkSteps <= 0 {
			t.Errorf("%s: empty region row %+v", r.Microtask, r)
		}
		if r.LoadBalance <= 0 || r.LoadBalance > 1 {
			t.Errorf("%s: load balance %v outside (0,1]", r.Microtask, r.LoadBalance)
		}
		if f := m.FuncByName(r.Microtask); f == nil || !f.Outlined {
			t.Errorf("%s: profiled region is not an outlined microtask", r.Microtask)
		}
	}
	if lb := p.LoadBalance(); lb <= 0 || lb > 1 {
		t.Errorf("run load balance %v outside (0,1]", lb)
	}
}
