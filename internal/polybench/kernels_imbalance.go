package polybench

import (
	"fmt"
	"strings"
)

// The triangular-workload kernel for schedule experiments. Row i's
// inner loop runs N-i iterations, so contiguous static partitions hand
// the low-tid workers several times the work of the high-tid ones —
// the load-imbalance shape that schedule(guided)'s decaying chunks and
// schedule(auto)'s work stealing exist to fix. It stays outside the
// 16-benchmark registry (the paper's Table 3/4 set is closed); the
// schedule-balance experiment and the engine determinism gate build
// variants through ImbalancedKernel.
//
// Every row writes only its own A[i] cell, so the loop is DOALL and
// its output is bitwise-identical under any chunk-to-worker
// assignment — the property the determinism tests pin for the
// timing-dependent guided and auto schedules.

// ImbalancedSchedules lists the schedule clauses the experiment
// compares, in presentation order.
var ImbalancedSchedules = []string{"static", "dynamic", "guided", "auto"}

// imbalancedSrc is the kernel source with a @PRAGMA@ hole for the
// pragma line ("" yields the sequential variant). The hole is not a
// printf verb because the kernel body itself contains % operators.
const imbalancedSrc = `
#define N 192

double A[N];

void init() {
  for (long i = 0; i < N; i++) {
    A[i] = 0.0;
  }
}
void kernel_tri() {
@PRAGMA@  for (long i = 0; i < N; i++) {
    A[i] = 0.25;
    for (long j = i; j < N; j++) {
      A[i] = A[i] + ((i + 2 * j + 1) % 9) * 0.5 + 0.125;
    }
  }
}
`

// imbalancedPragma maps a schedule name to its pragma line. Dynamic
// and guided carry a small explicit chunk so the decaying-chunk floor
// is exercised; auto takes none.
func imbalancedPragma(sched string) string {
	switch sched {
	case "":
		return ""
	case "static", "auto":
		return fmt.Sprintf("  #pragma omp parallel for schedule(%s)\n", sched)
	default:
		return fmt.Sprintf("  #pragma omp parallel for schedule(%s, 4)\n", sched)
	}
}

// ImbalancedKernel builds the triangular kernel annotated with the
// given schedule kind ("static", "dynamic", "guided", "auto"), or the
// sequential variant for "". The result is a self-contained Benchmark
// (Seq holds the variant source) compatible with RunWith, Checksum,
// and OutputsEqual.
func ImbalancedKernel(sched string) *Benchmark {
	name := "imbalanced"
	if sched != "" {
		name += "-" + sched
	}
	return &Benchmark{
		Name:        name,
		Seq:         strings.Replace(imbalancedSrc, "@PRAGMA@", imbalancedPragma(sched), 1),
		RunFuncs:    []string{"init", "kernel_tri"},
		KernelFuncs: []string{"kernel_tri"},
		Outputs:     []string{"A"},
	}
}
