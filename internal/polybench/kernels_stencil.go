package polybench

// Stencil and sweep benchmarks: jacobi-1d-imper, jacobi-2d-imper,
// fdtd-2d (all three Figure-9 subjects via parallel-region hoisting),
// adi, and floyd-warshall.

var jacobi1d = register(&Benchmark{
	Name: "jacobi-1d-imper",
	Seq: `
#define N 4000
#define TSTEPS 16

double A[N];
double B[N];

void init() {
  for (long i = 0; i < N; i++) {
    A[i] = (i * 7 % 31) * 0.5;
    B[i] = 0.0;
  }
}
void kernel_jacobi_1d() {
  for (long t = 0; t < TSTEPS; t++) {
    for (long i = 1; i < N - 1; i++) {
      B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
    }
    for (long j = 1; j < N - 1; j++) {
      A[j] = B[j];
    }
  }
}
`,
	Ref: `
#define N 4000
#define TSTEPS 16

double A[N];
double B[N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      A[i] = (i * 7 % 31) * 0.5;
      B[i] = 0.0;
    }
  }
}
void kernel_jacobi_1d() {
  for (long t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long i = 1; i < N - 1; i++) {
        B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long j = 1; j < N - 1; j++) {
        A[j] = B[j];
      }
    }
  }
}
`,
	Manual: `
#define N 4000
#define TSTEPS 16

double A[N];
double B[N];

void init() {
  for (long i = 0; i < N; i++) {
    A[i] = (i * 7 % 31) * 0.5;
    B[i] = 0.0;
  }
}
void kernel_jacobi_1d() {
  for (long t = 0; t < TSTEPS; t++) {
    #pragma omp parallel for schedule(static)
    for (long i = 1; i < N - 1; i++) {
      B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
    }
    #pragma omp parallel for schedule(static)
    for (long j = 1; j < N - 1; j++) {
      A[j] = B[j];
    }
  }
}
`,
	// Collab: the programmer hoists one parallel region around the time
	// loop of the SPLENDID output; the worksharing loops keep their
	// implicit barriers. One fork for the whole kernel instead of two per
	// time step.
	Collab: `
#define N 4000
#define TSTEPS 16

double A[N];
double B[N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      A[i] = (i * 7 % 31) * 0.5;
      B[i] = 0.0;
    }
  }
}
void kernel_jacobi_1d() {
  #pragma omp parallel
  {
    for (long t = 0; t < TSTEPS; t++) {
      #pragma omp for schedule(static)
      for (long i = 1; i < N - 1; i++) {
        B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
      }
      #pragma omp for schedule(static)
      for (long j = 1; j < N - 1; j++) {
        A[j] = B[j];
      }
    }
  }
}
`,
	CollabLoC:   3,
	RunFuncs:    []string{"init", "kernel_jacobi_1d"},
	KernelFuncs: []string{"kernel_jacobi_1d"},
	Outputs:     []string{"A"},
	PaperT3:     [4]int{2, 2, 2, 2},
})

var jacobi2d = register(&Benchmark{
	Name: "jacobi-2d-imper",
	Seq: `
#define N 90
#define TSTEPS 8

double A[N][N];
double B[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * 31 + j * 17) % 23;
      B[i][j] = 0.0;
    }
  }
}
void kernel_jacobi_2d() {
  for (long t = 0; t < TSTEPS; t++) {
    for (long i = 1; i < N - 1; i++) {
      for (long j = 1; j < N - 1; j++) {
        B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
      }
    }
    for (long i = 1; i < N - 1; i++) {
      for (long j = 1; j < N - 1; j++) {
        A[i][j] = B[i][j];
      }
    }
  }
}
`,
	Ref: `
#define N 90
#define TSTEPS 8

double A[N][N];
double B[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        A[i][j] = (i * 31 + j * 17) % 23;
        B[i][j] = 0.0;
      }
    }
  }
}
void kernel_jacobi_2d() {
  for (long t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long i = 1; i < N - 1; i++) {
        for (long j = 1; j < N - 1; j++) {
          B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long i = 1; i < N - 1; i++) {
        for (long j = 1; j < N - 1; j++) {
          A[i][j] = B[i][j];
        }
      }
    }
  }
}
`,
	Manual: `
#define N 90
#define TSTEPS 8

double A[N][N];
double B[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * 31 + j * 17) % 23;
      B[i][j] = 0.0;
    }
  }
}
void kernel_jacobi_2d() {
  for (long t = 0; t < TSTEPS; t++) {
    #pragma omp parallel for schedule(static)
    for (long i = 1; i < N - 1; i++) {
      for (long j = 1; j < N - 1; j++) {
        B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
      }
    }
    #pragma omp parallel for schedule(static)
    for (long i = 1; i < N - 1; i++) {
      for (long j = 1; j < N - 1; j++) {
        A[i][j] = B[i][j];
      }
    }
  }
}
`,
	Collab: `
#define N 90
#define TSTEPS 8

double A[N][N];
double B[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        A[i][j] = (i * 31 + j * 17) % 23;
        B[i][j] = 0.0;
      }
    }
  }
}
void kernel_jacobi_2d() {
  #pragma omp parallel
  {
    for (long t = 0; t < TSTEPS; t++) {
      #pragma omp for schedule(static)
      for (long i = 1; i < N - 1; i++) {
        for (long j = 1; j < N - 1; j++) {
          B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
        }
      }
      #pragma omp for schedule(static)
      for (long i = 1; i < N - 1; i++) {
        for (long j = 1; j < N - 1; j++) {
          A[i][j] = B[i][j];
        }
      }
    }
  }
}
`,
	CollabLoC:   3,
	RunFuncs:    []string{"init", "kernel_jacobi_2d"},
	KernelFuncs: []string{"kernel_jacobi_2d"},
	Outputs:     []string{"A"},
	PaperT3:     [4]int{2, 2, 2, 2},
})

var fdtd2d = register(&Benchmark{
	Name: "fdtd-2d",
	Seq: `
#define NX 64
#define NY 64
#define TMAX 8

double ex[NX][NY];
double ey[NX][NY];
double hz[NX][NY];
double fict[TMAX];

void init() {
  for (long t = 0; t < TMAX; t++) {
    fict[t] = t;
  }
  for (long i = 0; i < NX; i++) {
    for (long j = 0; j < NY; j++) {
      ex[i][j] = (i * (j + 1)) % 7 * 0.3;
      ey[i][j] = (i * (j + 2)) % 5 * 0.6;
      hz[i][j] = (i * (j + 3)) % 9 * 0.9;
    }
  }
}
void kernel_fdtd_2d() {
  for (long t = 0; t < TMAX; t++) {
    for (long j = 0; j < NY; j++) {
      ey[0][j] = fict[t];
    }
    for (long i = 1; i < NX; i++) {
      for (long j = 0; j < NY; j++) {
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
      }
    }
    for (long i = 0; i < NX; i++) {
      for (long j = 1; j < NY; j++) {
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
      }
    }
    for (long i = 0; i < NX - 1; i++) {
      for (long j = 0; j < NY - 1; j++) {
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
      }
    }
  }
}
`,
	Ref: `
#define NX 64
#define NY 64
#define TMAX 8

double ex[NX][NY];
double ey[NX][NY];
double hz[NX][NY];
double fict[TMAX];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long t = 0; t < TMAX; t++) {
      fict[t] = t;
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < NX; i++) {
      for (long j = 0; j < NY; j++) {
        ex[i][j] = (i * (j + 1)) % 7 * 0.3;
        ey[i][j] = (i * (j + 2)) % 5 * 0.6;
        hz[i][j] = (i * (j + 3)) % 9 * 0.9;
      }
    }
  }
}
void kernel_fdtd_2d() {
  for (long t = 0; t < TMAX; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long j = 0; j < NY; j++) {
        ey[0][j] = fict[t];
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long i = 1; i < NX; i++) {
        for (long j = 0; j < NY; j++) {
          ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long i = 0; i < NX; i++) {
        for (long j = 1; j < NY; j++) {
          ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long i = 0; i < NX - 1; i++) {
        for (long j = 0; j < NY - 1; j++) {
          hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
        }
      }
    }
  }
}
`,
	Manual: `
#define NX 64
#define NY 64
#define TMAX 8

double ex[NX][NY];
double ey[NX][NY];
double hz[NX][NY];
double fict[TMAX];

void init() {
  for (long t = 0; t < TMAX; t++) {
    fict[t] = t;
  }
  for (long i = 0; i < NX; i++) {
    for (long j = 0; j < NY; j++) {
      ex[i][j] = (i * (j + 1)) % 7 * 0.3;
      ey[i][j] = (i * (j + 2)) % 5 * 0.6;
      hz[i][j] = (i * (j + 3)) % 9 * 0.9;
    }
  }
}
void kernel_fdtd_2d() {
  for (long t = 0; t < TMAX; t++) {
    for (long j = 0; j < NY; j++) {
      ey[0][j] = fict[t];
    }
    #pragma omp parallel for schedule(static)
    for (long i = 1; i < NX; i++) {
      for (long j = 0; j < NY; j++) {
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
      }
    }
    #pragma omp parallel for schedule(static)
    for (long i = 0; i < NX; i++) {
      for (long j = 1; j < NY; j++) {
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
      }
    }
    #pragma omp parallel for schedule(static)
    for (long i = 0; i < NX - 1; i++) {
      for (long j = 0; j < NY - 1; j++) {
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
      }
    }
  }
}
`,
	Collab: `
#define NX 64
#define NY 64
#define TMAX 8

double ex[NX][NY];
double ey[NX][NY];
double hz[NX][NY];
double fict[TMAX];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long t = 0; t < TMAX; t++) {
      fict[t] = t;
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < NX; i++) {
      for (long j = 0; j < NY; j++) {
        ex[i][j] = (i * (j + 1)) % 7 * 0.3;
        ey[i][j] = (i * (j + 2)) % 5 * 0.6;
        hz[i][j] = (i * (j + 3)) % 9 * 0.9;
      }
    }
  }
}
void kernel_fdtd_2d() {
  #pragma omp parallel
  {
    for (long t = 0; t < TMAX; t++) {
      #pragma omp for schedule(static)
      for (long j = 0; j < NY; j++) {
        ey[0][j] = fict[t];
      }
      #pragma omp for schedule(static)
      for (long i = 1; i < NX; i++) {
        for (long j = 0; j < NY; j++) {
          ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
        }
      }
      #pragma omp for schedule(static)
      for (long i = 0; i < NX; i++) {
        for (long j = 1; j < NY; j++) {
          ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
        }
      }
      #pragma omp for schedule(static)
      for (long i = 0; i < NX - 1; i++) {
        for (long j = 0; j < NY - 1; j++) {
          hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
        }
      }
    }
  }
}
`,
	CollabLoC:   5,
	RunFuncs:    []string{"init", "kernel_fdtd_2d"},
	KernelFuncs: []string{"kernel_fdtd_2d"},
	Outputs:     []string{"hz"},
	PaperT3:     [4]int{3, 4, 4, 3},
})

var adi = register(&Benchmark{
	Name: "adi",
	Seq: `
#define N 64
#define TSTEPS 4

double X[N][N];
double A[N][N];
double B[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      X[i][j] = (i * (j + 1) + 1) % 13 * 0.5;
      A[i][j] = (i * (j + 2) + 2) % 11 * 0.25 + 1.0;
      B[i][j] = (i * (j + 3) + 3) % 9 * 0.25 + 2.0;
    }
  }
}
void kernel_adi() {
  for (long t = 0; t < TSTEPS; t++) {
    for (long i1 = 0; i1 < N; i1++) {
      for (long i2 = 1; i2 < N; i2++) {
        X[i1][i2] = X[i1][i2] - X[i1][i2-1] * A[i1][i2] / B[i1][i2-1];
        B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1][i2-1];
      }
    }
    for (long i1 = 1; i1 < N; i1++) {
      for (long i2 = 0; i2 < N; i2++) {
        X[i1][i2] = X[i1][i2] - X[i1-1][i2] * A[i1][i2] / B[i1-1][i2];
        B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1-1][i2];
      }
    }
  }
}
`,
	Ref: `
#define N 64
#define TSTEPS 4

double X[N][N];
double A[N][N];
double B[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        X[i][j] = (i * (j + 1) + 1) % 13 * 0.5;
        A[i][j] = (i * (j + 2) + 2) % 11 * 0.25 + 1.0;
        B[i][j] = (i * (j + 3) + 3) % 9 * 0.25 + 2.0;
      }
    }
  }
}
void kernel_adi() {
  for (long t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (long i1 = 0; i1 < N; i1++) {
        for (long i2 = 1; i2 < N; i2++) {
          X[i1][i2] = X[i1][i2] - X[i1][i2-1] * A[i1][i2] / B[i1][i2-1];
          B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1][i2-1];
        }
      }
    }
    for (long i1 = 1; i1 < N; i1++) {
      #pragma omp parallel
      {
        #pragma omp for schedule(static) nowait
        for (long i2 = 0; i2 < N; i2++) {
          X[i1][i2] = X[i1][i2] - X[i1-1][i2] * A[i1][i2] / B[i1-1][i2];
          B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1-1][i2];
        }
      }
    }
  }
}
`,
	Manual: `
#define N 64
#define TSTEPS 4

double X[N][N];
double A[N][N];
double B[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      X[i][j] = (i * (j + 1) + 1) % 13 * 0.5;
      A[i][j] = (i * (j + 2) + 2) % 11 * 0.25 + 1.0;
      B[i][j] = (i * (j + 3) + 3) % 9 * 0.25 + 2.0;
    }
  }
}
void kernel_adi() {
  for (long t = 0; t < TSTEPS; t++) {
    #pragma omp parallel for schedule(static)
    for (long i1 = 0; i1 < N; i1++) {
      for (long i2 = 1; i2 < N; i2++) {
        X[i1][i2] = X[i1][i2] - X[i1][i2-1] * A[i1][i2] / B[i1][i2-1];
        B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1][i2-1];
      }
    }
    for (long i1 = 1; i1 < N; i1++) {
      #pragma omp parallel for schedule(static)
      for (long i2 = 0; i2 < N; i2++) {
        X[i1][i2] = X[i1][i2] - X[i1-1][i2] * A[i1][i2] / B[i1-1][i2];
        B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1-1][i2];
      }
    }
  }
}
`,
	RunFuncs:    []string{"init", "kernel_adi"},
	KernelFuncs: []string{"kernel_adi"},
	Outputs:     []string{"X", "B"},
	PaperT3:     [4]int{2, 3, 3, 2},
})

var floyd = register(&Benchmark{
	Name: "floyd-warshall",
	Seq: `
#define N 56

double path[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      path[i][j] = (i * j % 7) + 1.0;
      if (i == j) {
        path[i][j] = 0.0;
      }
    }
  }
}
void kernel_floyd_warshall() {
  for (long k = 0; k < N; k++) {
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        path[i][j] = path[i][j] < path[i][k] + path[k][j] ? path[i][j] : path[i][k] + path[k][j];
      }
    }
  }
}
`,
	// The compiler proves nothing here: every candidate loop reads row k
	// or column k of the array it writes, so the affine test rejects
	// them (Polly published one parallel loop via deeper reasoning; the
	// deviation is recorded in EXPERIMENTS.md).
	Ref: `
#define N 56

double path[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        path[i][j] = (i * j % 7) + 1.0;
        if (i == j) {
          path[i][j] = 0.0;
        }
      }
    }
  }
}
void kernel_floyd_warshall() {
  for (long k = 0; k < N; k++) {
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        path[i][j] = path[i][j] < path[i][k] + path[k][j] ? path[i][j] : path[i][k] + path[k][j];
      }
    }
  }
}
`,
	// A programmer may parallelize the i loop knowing the k-th row is
	// stable during sweep k (writes to it rewrite its own values).
	Manual: `
#define N 56

double path[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      path[i][j] = (i * j % 7) + 1.0;
      if (i == j) {
        path[i][j] = 0.0;
      }
    }
  }
}
void kernel_floyd_warshall() {
  for (long k = 0; k < N; k++) {
    #pragma omp parallel for schedule(static)
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        path[i][j] = path[i][j] < path[i][k] + path[k][j] ? path[i][j] : path[i][k] + path[k][j];
      }
    }
  }
}
`,
	RunFuncs:    []string{"init", "kernel_floyd_warshall"},
	KernelFuncs: []string{"kernel_floyd_warshall"},
	Outputs:     []string{"path"},
	PaperT3:     [4]int{1, 1, 1, 1},
})
