package polybench

// Linear-algebra benchmarks: gemm, 2mm, 3mm, syrk, syr2k, mvt, atax,
// bicg, gemver, gesummv, doitgen.

var gemm = register(&Benchmark{
	Name: "gemm",
	Seq: `
#define N 48

double A[N][N];
double B[N][N];
double C[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j + 1) % 7;
      B[i][j] = (i + j * 2) % 5;
      C[i][j] = (i - j) % 3;
    }
  }
}
void kernel_gemm() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      C[i][j] = C[i][j] * 0.5;
      for (long k = 0; k < N; k++) {
        C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
      }
    }
  }
}
`,
	Ref: `
#define N 48

double A[N][N];
double B[N][N];
double C[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        A[i][j] = (i * j + 1) % 7;
        B[i][j] = (i + j * 2) % 5;
        C[i][j] = (i - j) % 3;
      }
    }
  }
}
void kernel_gemm() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        C[i][j] = C[i][j] * 0.5;
        for (long k = 0; k < N; k++) {
          C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
        }
      }
    }
  }
}
`,
	Manual: `
#define N 48

double A[N][N];
double B[N][N];
double C[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j + 1) % 7;
      B[i][j] = (i + j * 2) % 5;
      C[i][j] = (i - j) % 3;
    }
  }
}
void kernel_gemm() {
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      C[i][j] = C[i][j] * 0.5;
      for (long k = 0; k < N; k++) {
        C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
      }
    }
  }
}
`,
	RunFuncs:    []string{"init", "kernel_gemm"},
	KernelFuncs: []string{"kernel_gemm"},
	Outputs:     []string{"C"},
	PaperT3:     [4]int{1, 3, 3, 1},
})

var twomm = register(&Benchmark{
	Name: "2mm",
	Seq: `
#define N 40

double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double tmp[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j) % 9;
      B[i][j] = (i + j) % 7;
      C[i][j] = (i * 2 + j) % 5;
      D[i][j] = (i - 2 * j) % 3;
    }
  }
}
void kernel_2mm() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      tmp[i][j] = 0.0;
      for (long k = 0; k < N; k++) {
        tmp[i][j] = tmp[i][j] + 1.2 * A[i][k] * B[k][j];
      }
    }
  }
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      D[i][j] = D[i][j] * 0.8;
      for (long k = 0; k < N; k++) {
        D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
      }
    }
  }
}
`,
	Ref: `
#define N 40

double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double tmp[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        A[i][j] = (i * j) % 9;
        B[i][j] = (i + j) % 7;
        C[i][j] = (i * 2 + j) % 5;
        D[i][j] = (i - 2 * j) % 3;
      }
    }
  }
}
void kernel_2mm() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        tmp[i][j] = 0.0;
        for (long k = 0; k < N; k++) {
          tmp[i][j] = tmp[i][j] + 1.2 * A[i][k] * B[k][j];
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        D[i][j] = D[i][j] * 0.8;
        for (long k = 0; k < N; k++) {
          D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
        }
      }
    }
  }
}
`,
	Manual: `
#define N 40

double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double tmp[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j) % 9;
      B[i][j] = (i + j) % 7;
      C[i][j] = (i * 2 + j) % 5;
      D[i][j] = (i - 2 * j) % 3;
    }
  }
}
void kernel_2mm() {
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      tmp[i][j] = 0.0;
      for (long k = 0; k < N; k++) {
        tmp[i][j] = tmp[i][j] + 1.2 * A[i][k] * B[k][j];
      }
    }
  }
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      D[i][j] = D[i][j] * 0.8;
      for (long k = 0; k < N; k++) {
        D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
      }
    }
  }
}
`,
	RunFuncs:    []string{"init", "kernel_2mm"},
	KernelFuncs: []string{"kernel_2mm"},
	Outputs:     []string{"D"},
	PaperT3:     [4]int{2, 3, 3, 2},
})

var threemm = register(&Benchmark{
	Name: "3mm",
	Seq: `
#define N 36

double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double E[N][N];
double F[N][N];
double G[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j + 3) % 11;
      B[i][j] = (i + j) % 7;
      C[i][j] = (2 * i + j) % 5;
      D[i][j] = (i + 3 * j) % 9;
    }
  }
}
void kernel_3mm() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      E[i][j] = 0.0;
      for (long k = 0; k < N; k++) {
        E[i][j] = E[i][j] + A[i][k] * B[k][j];
      }
    }
  }
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      F[i][j] = 0.0;
      for (long k = 0; k < N; k++) {
        F[i][j] = F[i][j] + C[i][k] * D[k][j];
      }
    }
  }
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      G[i][j] = 0.0;
      for (long k = 0; k < N; k++) {
        G[i][j] = G[i][j] + E[i][k] * F[k][j];
      }
    }
  }
}
`,
	Ref: `
#define N 36

double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double E[N][N];
double F[N][N];
double G[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        A[i][j] = (i * j + 3) % 11;
        B[i][j] = (i + j) % 7;
        C[i][j] = (2 * i + j) % 5;
        D[i][j] = (i + 3 * j) % 9;
      }
    }
  }
}
void kernel_3mm() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        E[i][j] = 0.0;
        for (long k = 0; k < N; k++) {
          E[i][j] = E[i][j] + A[i][k] * B[k][j];
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        F[i][j] = 0.0;
        for (long k = 0; k < N; k++) {
          F[i][j] = F[i][j] + C[i][k] * D[k][j];
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        G[i][j] = 0.0;
        for (long k = 0; k < N; k++) {
          G[i][j] = G[i][j] + E[i][k] * F[k][j];
        }
      }
    }
  }
}
`,
	Manual: `
#define N 36

double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double E[N][N];
double F[N][N];
double G[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j + 3) % 11;
      B[i][j] = (i + j) % 7;
      C[i][j] = (2 * i + j) % 5;
      D[i][j] = (i + 3 * j) % 9;
    }
  }
}
void kernel_3mm() {
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      E[i][j] = 0.0;
      for (long k = 0; k < N; k++) {
        E[i][j] = E[i][j] + A[i][k] * B[k][j];
      }
    }
  }
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      F[i][j] = 0.0;
      for (long k = 0; k < N; k++) {
        F[i][j] = F[i][j] + C[i][k] * D[k][j];
      }
    }
  }
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      G[i][j] = 0.0;
      for (long k = 0; k < N; k++) {
        G[i][j] = G[i][j] + E[i][k] * F[k][j];
      }
    }
  }
}
`,
	RunFuncs:    []string{"init", "kernel_3mm"},
	KernelFuncs: []string{"kernel_3mm"},
	Outputs:     []string{"G"},
	PaperT3:     [4]int{3, 4, 4, 3},
})

var syrk = register(&Benchmark{
	Name: "syrk",
	Seq: `
#define N 48

double A[N][N];
double C[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j + 2) % 13;
      C[i][j] = (i + j) % 7;
    }
  }
}
void kernel_syrk() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      C[i][j] = C[i][j] * 0.3;
      for (long k = 0; k < N; k++) {
        C[i][j] = C[i][j] + 1.1 * A[i][k] * A[j][k];
      }
    }
  }
}
`,
	Ref: `
#define N 48

double A[N][N];
double C[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        A[i][j] = (i * j + 2) % 13;
        C[i][j] = (i + j) % 7;
      }
    }
  }
}
void kernel_syrk() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        C[i][j] = C[i][j] * 0.3;
        for (long k = 0; k < N; k++) {
          C[i][j] = C[i][j] + 1.1 * A[i][k] * A[j][k];
        }
      }
    }
  }
}
`,
	Manual: `
#define N 48

double A[N][N];
double C[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j + 2) % 13;
      C[i][j] = (i + j) % 7;
    }
  }
}
void kernel_syrk() {
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      C[i][j] = C[i][j] * 0.3;
      for (long k = 0; k < N; k++) {
        C[i][j] = C[i][j] + 1.1 * A[i][k] * A[j][k];
      }
    }
  }
}
`,
	RunFuncs:    []string{"init", "kernel_syrk"},
	KernelFuncs: []string{"kernel_syrk"},
	Outputs:     []string{"C"},
	PaperT3:     [4]int{1, 2, 2, 1},
})

var syr2k = register(&Benchmark{
	Name: "syr2k",
	Seq: `
#define N 44

double A[N][N];
double B[N][N];
double C[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j + 1) % 9;
      B[i][j] = (i + 2 * j) % 7;
      C[i][j] = (3 * i + j) % 5;
    }
  }
}
void kernel_syr2k() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      C[i][j] = C[i][j] * 0.4;
      for (long k = 0; k < N; k++) {
        C[i][j] = C[i][j] + A[i][k] * B[j][k] + B[i][k] * A[j][k];
      }
    }
  }
}
`,
	Ref: `
#define N 44

double A[N][N];
double B[N][N];
double C[N][N];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        A[i][j] = (i * j + 1) % 9;
        B[i][j] = (i + 2 * j) % 7;
        C[i][j] = (3 * i + j) % 5;
      }
    }
  }
}
void kernel_syr2k() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < N; i++) {
      for (long j = 0; j < N; j++) {
        C[i][j] = C[i][j] * 0.4;
        for (long k = 0; k < N; k++) {
          C[i][j] = C[i][j] + A[i][k] * B[j][k] + B[i][k] * A[j][k];
        }
      }
    }
  }
}
`,
	Manual: `
#define N 44

double A[N][N];
double B[N][N];
double C[N][N];

void init() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = (i * j + 1) % 9;
      B[i][j] = (i + 2 * j) % 7;
      C[i][j] = (3 * i + j) % 5;
    }
  }
}
void kernel_syr2k() {
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      C[i][j] = C[i][j] * 0.4;
      for (long k = 0; k < N; k++) {
        C[i][j] = C[i][j] + A[i][k] * B[j][k] + B[i][k] * A[j][k];
      }
    }
  }
}
`,
	RunFuncs:    []string{"init", "kernel_syr2k"},
	KernelFuncs: []string{"kernel_syr2k"},
	Outputs:     []string{"C"},
	PaperT3:     [4]int{1, 2, 2, 1},
})

var doitgen = register(&Benchmark{
	Name: "doitgen",
	Seq: `
#define NR 20
#define NQ 20
#define NP 24

double A[NR][NQ][NP];
double C4[NP][NP];
double sum[NR][NQ][NP];

void init() {
  for (long r = 0; r < NR; r++) {
    for (long q = 0; q < NQ; q++) {
      for (long p = 0; p < NP; p++) {
        A[r][q][p] = (r * q + p) % 7;
      }
    }
  }
  for (long i = 0; i < NP; i++) {
    for (long j = 0; j < NP; j++) {
      C4[i][j] = (i * j) % 5;
    }
  }
}
void kernel_doitgen() {
  for (long r = 0; r < NR; r++) {
    for (long q = 0; q < NQ; q++) {
      for (long p = 0; p < NP; p++) {
        sum[r][q][p] = 0.0;
        for (long s = 0; s < NP; s++) {
          sum[r][q][p] = sum[r][q][p] + A[r][q][s] * C4[s][p];
        }
      }
      for (long p = 0; p < NP; p++) {
        A[r][q][p] = sum[r][q][p];
      }
    }
  }
}
`,
	Ref: `
#define NR 20
#define NQ 20
#define NP 24

double A[NR][NQ][NP];
double C4[NP][NP];
double sum[NR][NQ][NP];

void init() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long r = 0; r < NR; r++) {
      for (long q = 0; q < NQ; q++) {
        for (long p = 0; p < NP; p++) {
          A[r][q][p] = (r * q + p) % 7;
        }
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 0; i < NP; i++) {
      for (long j = 0; j < NP; j++) {
        C4[i][j] = (i * j) % 5;
      }
    }
  }
}
void kernel_doitgen() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long r = 0; r < NR; r++) {
      for (long q = 0; q < NQ; q++) {
        for (long p = 0; p < NP; p++) {
          sum[r][q][p] = 0.0;
          for (long s = 0; s < NP; s++) {
            sum[r][q][p] = sum[r][q][p] + A[r][q][s] * C4[s][p];
          }
        }
        for (long p = 0; p < NP; p++) {
          A[r][q][p] = sum[r][q][p];
        }
      }
    }
  }
}
`,
	Manual: `
#define NR 20
#define NQ 20
#define NP 24

double A[NR][NQ][NP];
double C4[NP][NP];
double sum[NR][NQ][NP];

void init() {
  for (long r = 0; r < NR; r++) {
    for (long q = 0; q < NQ; q++) {
      for (long p = 0; p < NP; p++) {
        A[r][q][p] = (r * q + p) % 7;
      }
    }
  }
  for (long i = 0; i < NP; i++) {
    for (long j = 0; j < NP; j++) {
      C4[i][j] = (i * j) % 5;
    }
  }
}
void kernel_doitgen() {
  #pragma omp parallel for schedule(static)
  for (long r = 0; r < NR; r++) {
    for (long q = 0; q < NQ; q++) {
      for (long p = 0; p < NP; p++) {
        sum[r][q][p] = 0.0;
        for (long s = 0; s < NP; s++) {
          sum[r][q][p] = sum[r][q][p] + A[r][q][s] * C4[s][p];
        }
      }
      for (long p = 0; p < NP; p++) {
        A[r][q][p] = sum[r][q][p];
      }
    }
  }
}
`,
	RunFuncs:    []string{"init", "kernel_doitgen"},
	KernelFuncs: []string{"kernel_doitgen"},
	Outputs:     []string{"A"},
	PaperT3:     [4]int{1, 2, 2, 1},
})
