// Package cbackend reimplements the LLVM C Backend the paper describes
// as SPLENDID's substrate (§5.1): a close-to-one-to-one translation from
// IR instructions to C statements where branches become goto statements,
// every block is labeled, and SSA values turn into machine-flavored
// local variables. Its output is deliberately unstructured — it is both
// a decompilation baseline and the floor SPLENDID improves upon.
package cbackend

import (
	"repro/internal/cast"
	"repro/internal/decomp"
	"repro/internal/ir"
)

// Decompile translates the whole module in the naive goto style.
func Decompile(m *ir.Module) *cast.File {
	opts := decomp.Options{
		Structured: false,
		Fold:       false,
		Name:       decomp.IRNamer("llvm_cbe_"),
	}
	return decomp.TranslateModule(m, opts, nil)
}

// DecompileFunction translates a single function.
func DecompileFunction(f *ir.Function) *cast.FuncDecl {
	opts := decomp.Options{
		Structured: false,
		Fold:       false,
		Name:       decomp.IRNamer("llvm_cbe_"),
	}
	return decomp.TranslateFunction(f, opts)
}
