package cbackend

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/ir"
)

const loopIR = `
@A = global [10 x i64] zeroinitializer
define void @fill(i64 %n) {
entry:
  br label %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %done
body:
  %g = getelementptr [10 x i64], [10 x i64]* @A, i64 0, i64 %i
  store i64 %i, i64* %g
  %i.next = add i64 %i, 1
  br label %head
done:
  ret void
}
`

func TestGotoStyle(t *testing.T) {
	m := ir.MustParse(loopIR)
	c := cast.Print(Decompile(m))
	// One-to-one translation: every block labeled, branches are gotos,
	// no loop constructs.
	for _, want := range []string{"entry:;", "head:;", "body:;", "done:;",
		"goto head;", "goto body;", "goto done;", "llvm_cbe_i ="} {
		if !strings.Contains(c, want) {
			t.Errorf("missing %q:\n%s", want, c)
		}
	}
	for _, reject := range []string{"for (", "while (", "do {"} {
		if strings.Contains(c, reject) {
			t.Errorf("structured construct %q in naive backend output:\n%s", reject, c)
		}
	}
}

func TestOneStatementPerInstruction(t *testing.T) {
	m := ir.MustParse(loopIR)
	c := cast.Print(Decompile(m))
	// No expression folding: the gep and the comparison are separate
	// assignments.
	if !strings.Contains(c, "llvm_cbe_g = ") || !strings.Contains(c, "llvm_cbe_c = ") {
		t.Errorf("instructions folded in naive backend:\n%s", c)
	}
}

func TestDecompileFunctionMatchesModule(t *testing.T) {
	m := ir.MustParse(loopIR)
	fd := DecompileFunction(m.FuncByName("fill"))
	if fd.Name != "fill" || len(fd.Params) != 1 {
		t.Errorf("signature wrong: %s/%d", fd.Name, len(fd.Params))
	}
}
