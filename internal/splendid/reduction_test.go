package splendid

import (
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/interp"
	"repro/internal/passes"
)

const reductionSrc = `
#define N 800
double A[N];

void seed() {
  for (long i = 0; i < N; i++) {
    A[i] = (i % 13) * 0.5;
  }
}
double sum() {
  double s = 0.0;
  for (long i = 0; i < N; i++) {
    s = s + A[i];
  }
  return s;
}
`

// TestReductionDecompilation covers the paper's §7 future work end to
// end: the parallelized reduction decompiles to a reduction clause, the
// body reads as the original source, and the recompiled output computes
// the same sum in parallel.
func TestReductionDecompilation(t *testing.T) {
	m := buildParallelIR(t, reductionSrc)
	if !strings.Contains(m.Print(), "__kmpc_atomic_float8_add") {
		t.Fatalf("parallelizer did not lower the reduction:\n%s", m.Print())
	}
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	c := res.C
	if !strings.Contains(c, "reduction(+: s)") {
		t.Errorf("no reduction clause:\n%s", c)
	}
	if !strings.Contains(c, "s = s + A[i];") {
		t.Errorf("reduction body not natural:\n%s", c)
	}
	for _, reject := range []string{"__kmpc", "atomic"} {
		if strings.Contains(c, reject) {
			t.Errorf("runtime artifact %q survived:\n%s", reject, c)
		}
	}

	// Round trip: recompile and run, sequentially exact and in parallel
	// within reduction tolerance.
	ref, _ := cfront.CompileSource(reductionSrc, "ref")
	refMach := interp.NewMachine(ref, interp.Options{})
	mustRunFns(t, refMach, "seed")
	want, err := refMach.Run("sum")
	if err != nil {
		t.Fatal(err)
	}

	rec, err := cfront.CompileSource(c, "rec")
	if err != nil {
		t.Fatalf("recompile: %v\n%s", err, c)
	}
	passes.Optimize(rec)
	for _, threads := range []int{1, 5} {
		mach := interp.NewMachine(rec, interp.Options{NumThreads: threads})
		mustRunFns(t, mach, "seed")
		got, err := mach.Run("sum")
		if err != nil {
			t.Fatal(err)
		}
		diff := got.F - want.F
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9*(1+want.F) {
			t.Errorf("threads=%d: sum %v != %v", threads, got.F, want.F)
		}
	}
}

func TestReductionSequentialRoundTripExact(t *testing.T) {
	// With one worker the combine order matches sequential execution, so
	// the round trip must be bitwise exact.
	m := buildParallelIR(t, reductionSrc)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cfront.CompileSource(res.C, "rec")
	if err != nil {
		t.Fatalf("recompile: %v\n%s", err, res.C)
	}
	ref, _ := cfront.CompileSource(reductionSrc, "ref")
	refMach := interp.NewMachine(ref, interp.Options{})
	recMach := interp.NewMachine(rec, interp.Options{NumThreads: 1})
	mustRunFns(t, refMach, "seed")
	mustRunFns(t, recMach, "seed")
	want, _ := refMach.Run("sum")
	got, err := recMach.Run("sum")
	if err != nil {
		t.Fatal(err)
	}
	if want.F != got.F {
		t.Errorf("1-thread round trip inexact: %v != %v\n%s", got.F, want.F, res.C)
	}
}

func mustRunFns(t *testing.T, mach *interp.Machine, fns ...string) {
	t.Helper()
	for _, fn := range fns {
		if _, err := mach.Run(fn); err != nil {
			t.Fatal(err)
		}
	}
}

const varBoundSrc = `
#define N 800
double A[N];

void seed() {
  for (long i = 0; i < N; i++) {
    A[i] = (i % 13) * 0.5;
  }
}
double sumN(long n) {
  double s = 3.5;
  for (long i = 0; i < n; i++) {
    s = s + A[i];
  }
  return s;
}
`

// TestReductionVariableBoundZeroTrip guards the derotation soundness fix:
// with a runtime bound the guard check cannot be eliminated, and the
// zero-trip path must return the initial value, not an undefined partial.
func TestReductionVariableBoundZeroTrip(t *testing.T) {
	m := buildParallelIR(t, varBoundSrc)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cfront.CompileSource(res.C, "rec")
	if err != nil {
		t.Fatalf("recompile: %v\n%s", err, res.C)
	}
	passes.Optimize(rec)

	ref, _ := cfront.CompileSource(varBoundSrc, "ref")
	refMach := interp.NewMachine(ref, interp.Options{})
	mustRunFns(t, refMach, "seed")
	mach := interp.NewMachine(rec, interp.Options{NumThreads: 4})
	mustRunFns(t, mach, "seed")

	for _, n := range []int64{0, 1, 7, 800} {
		want, err := refMach.Run("sumN", interp.IntV(n))
		if err != nil {
			t.Fatal(err)
		}
		got, err := mach.Run("sumN", interp.IntV(n))
		if err != nil {
			t.Fatalf("n=%d: %v\n%s", n, err, res.C)
		}
		diff := got.F - want.F
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9*(1+want.F) {
			t.Errorf("n=%d: sumN parallel %v != sequential %v\n%s", n, got.F, want.F, res.C)
		}
	}
}

const dynamicSrc = `
#define N 300
double A[N];
double B[N];

void seed() {
  for (long i = 0; i < N; i++) {
    B[i] = i % 23;
  }
}
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(dynamic, 8)
    for (long i = 0; i < N; i++) {
      A[i] = B[i] * 3.0 + 1.0;
    }
  }
}
`

// TestDynamicScheduleDecompilation: a dynamic worksharing loop written
// by a programmer (or another tool) decompiles to schedule(dynamic) and
// round-trips through recompilation.
func TestDynamicScheduleDecompilation(t *testing.T) {
	m, err := cfront.CompileSource(dynamicSrc, "dyn")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatalf("decompile: %v", err)
	}
	c := res.C
	if !strings.Contains(c, "schedule(dynamic, 8)") {
		t.Errorf("dynamic schedule clause missing:\n%s", c)
	}
	if strings.Contains(c, "__kmpc") {
		t.Errorf("runtime calls survived:\n%s", c)
	}
	if !strings.Contains(c, "A[i] = B[i] * 3.0 + 1.0;") {
		t.Errorf("body not natural:\n%s", c)
	}

	// Round trip.
	rec, err := cfront.CompileSource(c, "rec")
	if err != nil {
		t.Fatalf("recompile: %v\n%s", err, c)
	}
	passes.Optimize(rec)
	ref, _ := cfront.CompileSource(dynamicSrc, "ref")
	refMach := interp.NewMachine(ref, interp.Options{})
	mustRunFns(t, refMach, "seed", "kernel")
	for _, threads := range []int{1, 4} {
		mach := interp.NewMachine(rec, interp.Options{NumThreads: threads})
		mustRunFns(t, mach, "seed", "kernel")
		want := refMach.GlobalMem("A")
		got := mach.GlobalMem("A")
		for i := range want.Cells {
			if want.Cells[i].F != got.Cells[i].F {
				t.Fatalf("threads=%d: A[%d] = %v, want %v\n%s",
					threads, i, got.Cells[i], want.Cells[i], c)
			}
		}
	}
}
