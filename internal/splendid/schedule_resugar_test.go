package splendid

import (
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/interp"
	"repro/internal/passes"
)

// scheduleSrc builds the decompilation input: a worksharing loop
// annotated with the given schedule clause.
func scheduleSrc(clause string) string {
	return `
#define N 300
double A[N];
double B[N];

void seed() {
  for (long i = 0; i < N; i++) {
    B[i] = i % 23;
  }
}
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for ` + clause + `
    for (long i = 0; i < N; i++) {
      A[i] = B[i] * 3.0 + 1.0;
    }
  }
}
`
}

// TestScheduleResugar: each dispatch schedule kind survives the full
// round trip — compile, optimize, decompile back to pragma'd C naming
// the same kind, recompile, and execute bitwise-identically to the
// reference at 1 and 8 threads. The re-sugaring used to know only
// "static" and "dynamic"; guided came back mislabeled as dynamic and
// auto's placeholder chunk leaked into the pragma.
func TestScheduleResugar(t *testing.T) {
	cases := []struct {
		clause string // what the programmer wrote
		want   string // what the decompiler must print
		reject string // what it must not print
	}{
		{"schedule(dynamic, 8)", "schedule(dynamic, 8)", "schedule(guided"},
		{"schedule(guided, 8)", "schedule(guided, 8)", "schedule(dynamic"},
		{"schedule(guided)", "schedule(guided)", "schedule(guided,"},
		{"schedule(auto)", "schedule(auto)", "schedule(auto,"},
	}
	for _, c := range cases {
		t.Run(c.clause, func(t *testing.T) {
			src := scheduleSrc(c.clause)
			m, err := cfront.CompileSource(src, "sched")
			if err != nil {
				t.Fatal(err)
			}
			passes.Optimize(m)
			res, err := Decompile(m, Full())
			if err != nil {
				t.Fatalf("decompile: %v", err)
			}
			if !strings.Contains(res.C, c.want) {
				t.Errorf("re-sugared pragma %q missing:\n%s", c.want, res.C)
			}
			if strings.Contains(res.C, c.reject) {
				t.Errorf("re-sugared output contains %q:\n%s", c.reject, res.C)
			}
			if strings.Contains(res.C, "__kmpc") {
				t.Errorf("runtime calls survived:\n%s", res.C)
			}

			rec, err := cfront.CompileSource(res.C, "rec")
			if err != nil {
				t.Fatalf("recompile: %v\n%s", err, res.C)
			}
			passes.Optimize(rec)
			ref, _ := cfront.CompileSource(src, "ref")
			refMach := interp.NewMachine(ref, interp.Options{})
			mustRunFns(t, refMach, "seed", "kernel")
			want := refMach.GlobalMem("A")
			for _, threads := range []int{1, 8} {
				mach := interp.NewMachine(rec, interp.Options{NumThreads: threads})
				mustRunFns(t, mach, "seed", "kernel")
				got := mach.GlobalMem("A")
				for i := range want.Cells {
					if want.Cells[i].F != got.Cells[i].F {
						t.Fatalf("threads=%d: A[%d] = %v, want %v\n%s",
							threads, i, got.Cells[i], want.Cells[i], res.C)
					}
				}
			}
		})
	}
}
