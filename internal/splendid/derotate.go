package splendid

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/telemetry"
)

// DerotateLoops is the Loop-Rotate Detransformer (paper §4.2): it
// converts rotated counted loops (exit test on the stepped value at the
// latch, behind a zero-trip guard) back into canonical for-loop shape
// (exit test on the induction variable at a fresh header), and removes
// the guard check when it is provably equivalent to the initial exit
// test of the constructed for loop. Returns the number of loops
// de-rotated.
func DerotateLoops(f *ir.Function) int { return DerotateLoopsCtx(f, nil) }

// DerotateLoopsCtx is DerotateLoops with telemetry: each de-rotation and
// each guard proved redundant (the derotate.guards-proved counter) is
// recorded on tc.
func DerotateLoopsCtx(f *ir.Function, tc *telemetry.Ctx) int {
	return DerotateLoopsOpts(f, nil, tc)
}

// DerotateLoopsOpts is DerotateLoopsCtx with a shared analysis cache: the
// loop forest is queried through am (nil computes fresh), whose content
// hashing absorbs the invalidation bookkeeping of the rewrite loops —
// settled iterations hit the cache instead of recomputing dominators.
func DerotateLoopsOpts(f *ir.Function, am *analysis.Manager, tc *telemetry.Ctx) int {
	n := 0
	for i := 0; i < 64; i++ {
		li := am.Loops(f)
		done := true
		for _, l := range li.All {
			if derotateOne(f, l, tc) {
				n++
				done = false
				break // analyses invalidated
			}
		}
		if done {
			break
		}
	}
	if n > 0 {
		passes.DCE(f)
		passes.SimplifyCFG(f)
	}
	// Second sweep: guards hoisted above the (now canonical) loops — the
	// caller-side zero-trip checks around inlined parallel regions — are
	// redundant copies of the loop entry test; eliminate them.
	for i := 0; i < 16; i++ {
		li := am.Loops(f)
		changed := false
		for _, l := range li.All {
			cl := analysis.AnalyzeCountedLoop(l)
			if cl == nil || cl.Rotated {
				continue
			}
			pre := l.Preheader()
			if pre == nil {
				continue
			}
			exits := l.ExitBlocks()
			if len(exits) != 1 {
				continue
			}
			if eliminateHoistedGuard(f, cl, pre, l.Header, exits[0]) {
				tc.Count("derotate.guards-proved", 1)
				tc.Remarkf("derotate", f.Nam, l.Header.Nam, 1,
					"proved hoisted zero-trip guard above loop at %s redundant with the for-loop entry test; guard removed (§4.2)",
					l.Header.Nam)
				passes.DCE(f)
				passes.SimplifyCFG(f)
				changed = true
				break
			}
		}
		if !changed {
			break
		}
	}
	return n
}

// derotateOne inverts loop rotation on a single loop.
func derotateOne(f *ir.Function, l *analysis.Loop, tc *telemetry.Ctx) bool {
	cl := analysis.AnalyzeCountedLoop(l)
	if cl == nil || !cl.Rotated || !cl.CmpOnNext {
		return false
	}
	B := l.Header // rotated loops start executing at the body
	latch := l.Latch()
	if latch == nil {
		return false
	}
	pre := l.Preheader()
	if pre == nil {
		return false
	}
	// Find the exit block.
	var exit *ir.Block
	for _, s := range cl.CondBr.Blocks {
		if !l.Contains(s) {
			exit = s
		}
	}
	if exit == nil {
		return false
	}

	// The inclusive bound for the reconstructed header test:
	// continue while iv <= bound-1 for slt (iv < bound ⇔ iv <= bound-1),
	// iv <= bound for sle; symmetrically for negative steps.
	bd := ir.NewBuilder(f)
	newH := f.NewBlock("for.cond")
	bd.SetBlock(newH)

	var incl ir.Value
	var pred ir.CmpPred
	switch cl.ContinuePred {
	case ir.CmpSLT:
		incl = foldSub1(f, newH, cl.Bound)
		pred = ir.CmpSLE
	case ir.CmpSLE:
		incl = cl.Bound
		pred = ir.CmpSLE
	case ir.CmpSGT:
		incl = foldAdd1(f, newH, cl.Bound)
		pred = ir.CmpSGE
	case ir.CmpSGE:
		incl = cl.Bound
		pred = ir.CmpSGE
	default:
		f.RemoveBlock(newH)
		return false
	}

	// Move the phis from the rotated body head to the new header.
	phis := B.Phis()
	for i := len(phis) - 1; i >= 0; i-- {
		B.RemoveInstr(phis[i])
		newH.InsertAt(0, phis[i])
	}
	// Debug intrinsics describing those phis move along.
	for idx := 0; idx < len(B.Instrs); {
		in := B.Instrs[idx]
		isPhiDbg := in.Op == ir.OpDbgValue
		if isPhiDbg {
			if arg, ok := in.Args[0].(*ir.Instr); !ok || arg.Op != ir.OpPhi || arg.Parent != newH {
				isPhiDbg = false
			}
		}
		if isPhiDbg {
			B.Remove(idx)
			newH.InsertAt(newH.FirstNonPhi(), in)
			continue
		}
		idx++
	}

	cmp2 := bd.ICmp(pred, cl.IV, incl, f.FreshName("cmp"))
	_ = cmp2
	bd.CondBr(cmp2, B, exit)

	// Rewire edges: preheader and latch feed the new header; the latch's
	// rotated exit test dies.
	pre.Terminator().ReplaceBlock(B, newH)
	lt := latch.Terminator()
	lt.Op = ir.OpBr
	lt.Args = nil
	lt.Blocks = []*ir.Block{newH}

	// Exit phis: entries from the latch now come from the new header.
	// Where the entry carried a latch-incoming value of a moved phi, the
	// phi itself is the correct value: it merges the zero-trip (initial)
	// and loop-exit (latest) cases that the rotated form kept on two
	// separate edges.
	for _, ephi := range exit.Phis() {
		v := ephi.PhiIncoming(latch)
		if v == nil {
			continue
		}
		nv := v
		for _, p := range phis {
			if p.PhiIncoming(latch) == v {
				nv = ir.Value(p)
				break
			}
		}
		ephi.RemovePhiIncoming(latch)
		ephi.SetPhiIncoming(newH, nv)
	}

	// Guard-check elimination: the preheader's conditional branch guards
	// zero-trip entry. It is redundant iff its condition equals the new
	// header's first evaluation: cmp(contPred, init, bound). Prove the
	// equivalence structurally and drop the guard (paper §4.2).
	if gt := pre.Terminator(); gt != nil && gt.Op == ir.OpCondBr {
		if guardEquivalent(gt, cl, newH, exit) {
			// Replace with an unconditional branch into the loop.
			gt.Op = ir.OpBr
			gt.Args = nil
			gt.Blocks = []*ir.Block{newH}
			for _, phi := range exit.Phis() {
				phi.RemovePhiIncoming(pre)
			}
			tc.Count("derotate.guards-proved", 1)
			tc.Remarkf("derotate", f.Nam, newH.Nam, 1,
				"proved zero-trip guard equivalent to reconstructed for-loop entry test at %s; guard removed (§4.2)",
				newH.Nam)
		}
	}

	tc.Count("derotate.loops", 1)
	tc.Remarkf("derotate", f.Nam, newH.Nam, 1,
		"de-rotated do-while loop (body %s) into canonical for-loop with fresh header %s (§4.2)",
		B.Nam, newH.Nam)

	// The marker naming must survive: if B carried a splendid marker,
	// transfer it to the new header so pragma placement follows the loop.
	if hasMarker(B.Nam) {
		newH.Nam, B.Nam = B.Nam, f.FreshName("for.body")
	}
	return true
}

// eliminateHoistedGuard handles the shape
//
//	p2:   br i1 (init pred bound), %pre, %join
//	pre:  <pure>  br %for.cond
//	...loop... exit: <pure> br %join
//
// where the guard condition equals the for loop's first evaluation: the
// zero-trip case may then flow through the (pure) preheader and loop
// test instead of branching around them.
func eliminateHoistedGuard(f *ir.Function, cl *analysis.CountedLoop, pre, loopEntry, exit *ir.Block) bool {
	// Climb from the preheader through pure single-pred straight-line
	// blocks to the conditional guard.
	top := pre
	for i := 0; i < 8; i++ {
		if !blockPure(top) {
			return false
		}
		preds := top.Preds()
		if len(preds) != 1 {
			return false
		}
		p2 := preds[0]
		gt := p2.Terminator()
		if gt == nil {
			return false
		}
		if gt.Op == ir.OpBr {
			top = p2
			continue
		}
		if gt.Op != ir.OpCondBr {
			return false
		}
		var join *ir.Block
		switch {
		case gt.Blocks[0] == top:
			join = gt.Blocks[1]
		case gt.Blocks[1] == top:
			join = gt.Blocks[0]
		default:
			return false
		}
		// The loop exit must reach join through pure, branch-only blocks,
		// so skipping the guard changes no effects in the zero-trip case.
		if !purelyReaches(exit, join, 8) {
			return false
		}
		if !guardEquivalent(gt, cl, top, join) {
			return false
		}
		for _, phi := range join.Phis() {
			// The skip edge disappears; the same value arrives via the
			// loop exit path (the derotated exit phis merge the
			// zero-trip case).
			phi.RemovePhiIncoming(p2)
		}
		gt.Op = ir.OpBr
		gt.Args = nil
		gt.Blocks = []*ir.Block{top}
		return true
	}
	return false
}

// purelyReaches reports whether from reaches to through unconditional
// branches over side-effect-free blocks (bounded walk).
func purelyReaches(from, to *ir.Block, limit int) bool {
	b := from
	for i := 0; i < limit; i++ {
		if b == to {
			return true
		}
		if !blockPure(b) {
			return false
		}
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr {
			return false
		}
		b = t.Blocks[0]
	}
	return false
}

func blockPure(b *ir.Block) bool {
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpStore, ir.OpCall:
			return false
		}
	}
	return true
}

func hasMarker(name string) bool {
	return len(name) >= len(markerPrefix) && name[:len(markerPrefix)] == markerPrefix
}

// foldSub1 returns bound-1, reusing constants where possible.
func foldSub1(f *ir.Function, blk *ir.Block, bound ir.Value) ir.Value {
	if c, ok := bound.(*ir.ConstInt); ok {
		return ir.IntConst(c.Typ, c.V-1)
	}
	in := &ir.Instr{Op: ir.OpSub, Typ: bound.Type(), Nam: f.FreshName("ub"),
		Args: []ir.Value{bound, ir.I64Const(1)}}
	blk.InsertAt(0, in)
	return in
}

func foldAdd1(f *ir.Function, blk *ir.Block, bound ir.Value) ir.Value {
	if c, ok := bound.(*ir.ConstInt); ok {
		return ir.IntConst(c.Typ, c.V+1)
	}
	in := &ir.Instr{Op: ir.OpAdd, Typ: bound.Type(), Nam: f.FreshName("lb"),
		Args: []ir.Value{bound, ir.I64Const(1)}}
	blk.InsertAt(0, in)
	return in
}

// guardEquivalent proves the rotation guard tests the same condition the
// reconstructed for loop tests on entry: guard ≡ (init contPred bound),
// with the loop on the corresponding edge. Both operand orders and both
// polarities are accepted.
func guardEquivalent(guard *ir.Instr, cl *analysis.CountedLoop, loopEntry, exit *ir.Block) bool {
	cmp, ok := guard.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return false
	}
	toLoop := guard.Blocks[0] == loopEntry
	if !toLoop && guard.Blocks[0] != exit {
		return false
	}
	// Normalize: predicate under which control enters the loop.
	pred := cmp.Pred
	if !toLoop {
		pred = pred.Inverse()
	}
	a, b := cmp.Args[0], cmp.Args[1]
	// Accept (init pred bound) and (bound pred' init).
	if eqValue(a, cl.Init) && eqValue(b, cl.Bound) && pred == cl.ContinuePred {
		return true
	}
	if eqValue(a, cl.Bound) && eqValue(b, cl.Init) && pred.Swapped() == cl.ContinuePred {
		return true
	}
	// Also accept the inclusive form produced by the runtime shape:
	// init <= bound-1 style, i.e. (init sle X) where X+1 == bound.
	if pred == ir.CmpSLE && cl.ContinuePred == ir.CmpSLT && eqValue(a, cl.Init) && offByOne(b, cl.Bound) {
		return true
	}
	if pred == ir.CmpSGE && cl.ContinuePred == ir.CmpSGT && eqValue(a, cl.Init) && offByOneUp(b, cl.Bound) {
		return true
	}
	// And the converse: the loop tests init <= B-1 while the guard tests
	// init < B  (n >= 1 ⇔ n-1 >= 0).
	if pred == ir.CmpSLT && cl.ContinuePred == ir.CmpSLE && eqValue(a, cl.Init) && offByOne(cl.Bound, b) {
		return true
	}
	if pred == ir.CmpSGT && cl.ContinuePred == ir.CmpSGE && eqValue(a, cl.Init) && offByOneUp(cl.Bound, b) {
		return true
	}
	return false
}

func eqValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.ConstInt)
	cb, ok2 := b.(*ir.ConstInt)
	return ok1 && ok2 && ca.V == cb.V
}

// offByOne reports a == b-1 for constants or a = sub(b,1) structurally.
func offByOne(a, b ir.Value) bool {
	if ca, ok := a.(*ir.ConstInt); ok {
		if cb, ok := b.(*ir.ConstInt); ok {
			return ca.V == cb.V-1
		}
	}
	if in, ok := a.(*ir.Instr); ok && in.Op == ir.OpSub {
		if c, ok := in.Args[1].(*ir.ConstInt); ok && c.V == 1 && eqValue(in.Args[0], b) {
			return true
		}
	}
	return false
}

func offByOneUp(a, b ir.Value) bool {
	if ca, ok := a.(*ir.ConstInt); ok {
		if cb, ok := b.(*ir.ConstInt); ok {
			return ca.V == cb.V+1
		}
	}
	if in, ok := a.(*ir.Instr); ok && in.Op == ir.OpAdd {
		if c, ok := in.Args[1].(*ir.ConstInt); ok && c.V == 1 && eqValue(in.Args[0], b) {
			return true
		}
	}
	return false
}
