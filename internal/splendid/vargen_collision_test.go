package splendid

import (
	"testing"

	"repro/internal/ir"
)

// FinalNames suffixes a fallback that collides with a proposed source
// name (i -> i_r), but the chosen fallback must itself be reserved: with
// params %i and %i_r and the source name "i" already taken, both params
// would otherwise land on "i_r" and the emitted C would redeclare it.
func TestFinalNamesFallbackCollision(t *testing.T) {
	m := ir.MustParse(`
define i64 @f(i64 %i, i64 %i_r) {
entry:
  %a = add i64 %i, %i_r
  ret i64 %a
}
`)
	f := m.FuncByName("f")
	var add *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Nam == "a" {
			add = in
		}
	})
	if add == nil {
		t.Fatal("no %a instruction")
	}
	// Debug metadata relates %a to source variable "i"; both params lost
	// theirs and fall back to IR-derived names.
	names := FinalNames(f, map[ir.Value]string{add: "i"})

	seen := map[string]ir.Value{}
	for v, n := range names {
		if prev, dup := seen[n]; dup {
			t.Fatalf("name %q assigned to both %s and %s:\n%v", n, prev.Ident(), v.Ident(), names)
		}
		seen[n] = v
	}
	if names[add] != "i" {
		t.Errorf("proposed name dropped: %%a = %q, want \"i\"", names[add])
	}
	for _, p := range f.Params {
		if names[p] == "" {
			t.Errorf("param %%%s got no name", p.Nam)
		}
	}
}
