package splendid

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/telemetry"
)

// VarGenStats reports how the Variable Generator named things, feeding
// the paper's Figure 8.
type VarGenStats struct {
	// Proposed counts values that received a source-variable proposal.
	Proposed int
	// Conflicts counts proposals removed by Conflicting Definition
	// Detection (Algorithm 2).
	Conflicts int
	// Named counts values whose final name is a source variable.
	Named int
}

// GenerateVariables runs the Variable Proposer, the Most Recent Variable
// Definitions dataflow (Algorithm 1), and Conflicting Definition Removal
// (Algorithm 2) over f, returning a validated value→source-variable map
// (paper §4.3).
func GenerateVariables(f *ir.Function) (map[ir.Value]string, *VarGenStats) {
	return GenerateVariablesCtx(f, nil)
}

// GenerateVariablesCtx is GenerateVariables with telemetry: proposals,
// conflict removals (Algorithm 2), and final naming counts are recorded
// as counters, and each conflict removal emits a remark.
func GenerateVariablesCtx(f *ir.Function, tc *telemetry.Ctx) (map[ir.Value]string, *VarGenStats) {
	stats := &VarGenStats{}

	// --- Variable Proposer / Metadata Interpreter (§4.3.1) ---
	// Debug intrinsics relate values to source variables; parameters
	// carry their source names; phi incoming values merge into the phi's
	// variable (SSA de-transformation).
	proposal := map[ir.Value]string{}
	for _, p := range f.Params {
		if p.SourceName != "" {
			proposal[p] = p.SourceName
		}
	}
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpDbgValue && in.VarName != "" {
			if _, ok := in.Args[0].(*ir.Instr); ok {
				proposal[in.Args[0]] = in.VarName
			}
		}
	})
	// Phi collapse: incoming values inherit the phi's proposal (or, when
	// the phi is unnamed, its own register name) unless they already
	// carry a different source proposal.
	f.Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpPhi {
			return
		}
		phiVar, ok := proposal[in]
		if !ok {
			return
		}
		for _, a := range in.Args {
			ia, isInstr := a.(*ir.Instr)
			if !isInstr {
				continue
			}
			if _, has := proposal[ia]; !has {
				proposal[ia] = phiVar
			}
		}
	})
	stats.Proposed = len(proposal)

	// --- Algorithms 1 & 2: iterate to a fixed point ---
	for round := 0; round < 8; round++ {
		conflicts := findConflicts(f, proposal)
		if len(conflicts) == 0 {
			break
		}
		for _, v := range conflicts {
			tc.Remarkf("vargen", f.Nam, v.Ident(), -1,
				"conflicting definition: dropped proposal %q for %s — another value is the most recent definition at some use (Algorithm 2, §4.3.2)",
				proposal[v], v.Ident())
			delete(proposal, v)
			stats.Conflicts++
		}
	}

	stats.Named = len(proposal)
	tc.Count("vargen.proposed", stats.Proposed)
	tc.Count("vargen.conflicts", stats.Conflicts)
	tc.Count("vargen.named", stats.Named)
	return proposal, stats
}

// findConflicts runs the most-recent-definition dataflow and returns
// values whose proposals clash: at some use of value v proposed as var w,
// the most recent definition of w is not uniquely v. The clobbering
// values' proposals are reported for removal (the paper's example keeps
// the used definition and discards the conflicting one).
func findConflicts(f *ir.Function, proposal map[ir.Value]string) []ir.Value {
	// State: var name -> set of values that may be its most recent
	// definition. Keyed per block (IN sets); merged by union.
	type state map[string]map[ir.Value]bool

	cloneState := func(s state) state {
		ns := state{}
		for k, vs := range s {
			nv := map[ir.Value]bool{}
			for v := range vs {
				nv[v] = true
			}
			ns[k] = nv
		}
		return ns
	}
	mergeInto := func(dst state, src state) bool {
		changed := false
		for k, vs := range src {
			if dst[k] == nil {
				dst[k] = map[ir.Value]bool{}
			}
			for v := range vs {
				if !dst[k][v] {
					dst[k][v] = true
					changed = true
				}
			}
		}
		return changed
	}
	gen := func(s state, v ir.Value) {
		w, ok := proposal[v]
		if !ok {
			return
		}
		s[w] = map[ir.Value]bool{v: true}
	}
	// Transfer over one block: phis define at the head, instructions at
	// their position.
	// Phi operands are uses on the incoming edge (the predecessor's
	// exit), not at the phi's own position; they are checked separately
	// against predecessor OUT states.
	apply := func(s state, b *ir.Block, stopAt *ir.Instr, onUse func(user *ir.Instr, v ir.Value, s state)) {
		for _, in := range b.Instrs {
			if in == stopAt {
				return
			}
			if in.Op != ir.OpDbgValue && in.Op != ir.OpPhi && onUse != nil {
				for _, a := range in.Args {
					if _, ok := proposal[a]; ok {
						onUse(in, a, s)
					}
				}
			}
			if in.HasResult() {
				gen(s, in)
			}
		}
	}

	ins := map[*ir.Block]state{}
	entryState := state{}
	for _, p := range f.Params {
		gen(entryState, p)
	}
	ins[f.Entry()] = entryState

	// Fixed point over block IN sets.
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			in, ok := ins[b]
			if !ok {
				continue
			}
			out := cloneState(in)
			apply(out, b, nil, nil)
			for _, s := range b.Succs() {
				if ins[s] == nil {
					ins[s] = state{}
				}
				if mergeInto(ins[s], out) {
					changed = true
				}
			}
		}
	}

	// Conflict scan: replay each block, checking proposed uses; then
	// check phi edge uses against the predecessor's OUT state.
	conflictSet := map[ir.Value]bool{}
	checkUse := func(v ir.Value, s state) {
		w := proposal[v]
		mrd := s[w]
		if len(mrd) == 1 && mrd[v] {
			return // the used definition is the unique most recent one
		}
		// Conflict: discard the proposals of the clobbering values.
		for other := range mrd {
			if other != v {
				conflictSet[other] = true
			}
		}
		if len(mrd) == 0 {
			// The variable has no reaching definition here (e.g. the
			// use precedes every def on some path): drop the used one.
			conflictSet[v] = true
		}
	}
	outs := map[*ir.Block]state{}
	for _, b := range f.Blocks {
		in, ok := ins[b]
		if !ok {
			continue
		}
		s := cloneState(in)
		apply(s, b, nil, func(user *ir.Instr, v ir.Value, s state) { checkUse(v, s) })
		outs[b] = s
	}
	for _, b := range f.Blocks {
		out, ok := outs[b]
		if !ok {
			continue
		}
		for _, succ := range b.Succs() {
			for _, phi := range succ.Phis() {
				v := phi.PhiIncoming(b)
				if v == nil {
					continue
				}
				if _, proposed := proposal[v]; proposed && v != ir.Value(phi) {
					checkUse(v, out)
				}
			}
		}
	}

	out := make([]ir.Value, 0, len(conflictSet))
	for v := range conflictSet {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ident() < out[j].Ident() })
	return out
}

// FinalNames builds the complete value→C-name map for a function:
// validated source proposals first, IR-derived fallbacks for the rest,
// with collisions against source names suffixed away.
func FinalNames(f *ir.Function, proposal map[ir.Value]string) map[ir.Value]string {
	return FinalNamesCtx(f, proposal, nil)
}

// FinalNamesCtx is FinalNames with telemetry. A value that falls back to
// a synthetic (IR-derived) name does so because no debug metadata
// survived optimization for it — the loss the paper's Figure 8 accounts —
// so the fallback is reported as a remark instead of dropped silently.
func FinalNamesCtx(f *ir.Function, proposal map[ir.Value]string, tc *telemetry.Ctx) map[ir.Value]string {
	names := map[ir.Value]string{}
	reserved := map[string]bool{}
	for _, w := range proposal {
		reserved[w] = true
	}
	for v, w := range proposal {
		names[v] = w
	}
	fallback := func(v ir.Value, base string) {
		if _, ok := names[v]; ok {
			return
		}
		n := base
		if reserved[n] {
			n = n + "_r"
			for reserved[n] {
				n += "_"
			}
		}
		// Reserve the chosen name too: a later fallback may propose it as
		// its own base (e.g. params %i and %i_r when "i" is taken — both
		// would otherwise land on "i_r").
		reserved[n] = true
		names[v] = n
		if tc.Enabled() {
			if _, isInstr := v.(*ir.Instr); isInstr {
				tc.Count("vargen.synthetic-names", 1)
				tc.Remarkf("vargen", f.Nam, v.Ident(), 1,
					"no surviving debug metadata relates %s to a source variable; emitting synthetic name %q (Figure 8 accounting)",
					v.Ident(), n)
			}
		}
	}
	for _, p := range f.Params {
		fallback(p, p.Nam)
	}
	f.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			fallback(in, in.Nam)
		}
	})
	return names
}
