// Package splendid implements the paper's primary contribution: an
// LLVM-IR→C/OpenMP decompiler producing portable, natural parallel
// source. The pipeline follows Figure 4 of the paper:
//
//	Parallel Semantic Analyzer   — find __kmpc_fork_call regions
//	Parallel Region Detransformer — restore sequential loop parameters,
//	                                strip runtime setup, inline the
//	                                outlined region (Loop Inliner)
//	Loop-Rotate Detransformer    — rebuild canonical for loops and prove
//	                                the rotation guard redundant
//	Variable Proposer/Generator  — Algorithms 1 & 2: recover source
//	                                variable names from debug metadata
//	                                without lifetime conflicts
//	Pragma Generator             — re-express parallelism as
//	                                #pragma omp parallel / for
//	Control-Flow Generator       — structured C emission with expression
//	                                folding
//
// Three configurations reproduce the paper's ablation (Figure 7):
// V1 (natural control flow only), Portable (adds explicit parallelism),
// and Full (adds variable renaming).
package splendid

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/decomp"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/passes"
	"repro/internal/telemetry"
)

// Config selects SPLENDID features, mirroring the paper's variants.
type Config struct {
	// ExplicitParallelism runs the Parallel Region Detransformer and the
	// Pragma Generator (Portable SPLENDID and Full).
	ExplicitParallelism bool
	// RestoreForLoops runs the Loop-Rotate Detransformer (all variants).
	RestoreForLoops bool
	// RenameVariables runs the Variable Generator (Full only).
	RenameVariables bool
	// FoldExpressions collapses single-use values into compound
	// expressions (all variants; the C-backend substrate has it off).
	FoldExpressions bool
}

// V1 is SPLENDID v1: natural control-flow construction only.
func V1() Config {
	return Config{RestoreForLoops: true, FoldExpressions: true}
}

// Portable is SPLENDID v2: control flow plus explicit parallelism; its
// output recompiles with any OpenMP compiler.
func Portable() Config {
	return Config{RestoreForLoops: true, ExplicitParallelism: true, FoldExpressions: true}
}

// Full is the complete SPLENDID with variable renaming.
func Full() Config {
	return Config{RestoreForLoops: true, ExplicitParallelism: true,
		RenameVariables: true, FoldExpressions: true}
}

// Stats aggregates decompilation statistics for the evaluation.
type Stats struct {
	ParallelRegions int
	DerotatedLoops  int
	PragmasEmitted  int
	VarGen          VarGenStats
	// DeclaredVars and SourceNamedVars feed Figure 8: the fraction of
	// emitted C variables carrying reconstructed source names.
	DeclaredVars    int
	SourceNamedVars int
}

// Result is a completed decompilation.
type Result struct {
	File  *cast.File
	C     string
	Stats Stats
}

// Decompile translates parallel IR into OpenMP C source. The input
// module is not modified (the pipeline runs on a private copy).
func Decompile(m *ir.Module, cfg Config) (*Result, error) {
	return DecompileCtx(m, cfg, nil)
}

// Opts configures how the decompilation pipeline executes, independent of
// which features (Config) it runs. The zero value is serial, uncached,
// unobserved execution — exactly the legacy DecompileCtx behaviour.
type Opts struct {
	// Telemetry receives stage spans, counters, and remarks (nil disables).
	Telemetry *telemetry.Ctx
	// Analyses is a shared analysis cache for the per-function rewrite
	// stages (nil computes analyses fresh each time).
	Analyses *analysis.Manager
	// Workers is the function-level parallelism degree for the
	// detransformer and emission stages: 0 or 1 is serial; >1 schedules
	// functions across a worker pool. Output is byte-identical for every
	// value — emission order follows the module, not the workers.
	Workers int
	// VerifyEach re-verifies the module after every pipeline stage and
	// every cleanup pass, attributing failures to the stage that broke it.
	VerifyEach bool
	// Metrics receives function-scheduler counters (splendid_sched_*)
	// from the fan-out stages. Nil disables them.
	Metrics *metrics.Registry
}

// DecompileCtx is Decompile with observation: every stage of the paper's
// Figure 4 pipeline (semantic analyzer, detransformers, variable
// generator, pragma generator, control-flow generator) is recorded as a
// telemetry stage span, and the detransformers emit counters and remarks
// through tc. A nil tc disables collection at no cost.
func DecompileCtx(m *ir.Module, cfg Config, tc *telemetry.Ctx) (*Result, error) {
	return DecompileOpts(m, cfg, Opts{Telemetry: tc})
}

// DecompileOpts is the full-control entry point: feature selection via
// cfg, execution policy via opts. The per-function stages (mem2reg
// promotion, loop de-rotation, address rematerialization, variable
// generation, control-flow generation) run under the function scheduler;
// module-level stages (region detransformation, pragma refresh) are
// serial barriers between them.
func DecompileOpts(m *ir.Module, cfg Config, opts Opts) (*Result, error) {
	tc := opts.Telemetry
	am := opts.Analyses
	sm := passes.NewSchedMetrics(opts.Metrics)
	total := tc.StartStage("decompile")
	defer total.End()

	sp := tc.StartStage("clone-input")
	work, err := ir.Parse(m.Print())
	sp.End()
	if err != nil {
		return nil, err
	}
	// The clone's functions are fresh objects; any cache contents keyed on
	// other modules' functions stay untouched, but a stale entry for a
	// recycled pointer cannot exist. (Hash revalidation would catch it
	// regardless.)
	res := &Result{}
	var mu sync.Mutex // guards res.Stats from scheduler workers

	verifyStage := func(stage string) error {
		if !opts.VerifyEach {
			return nil
		}
		if err := work.Verify(); err != nil {
			return fmt.Errorf("verify-each: stage %q broke the module: %w", stage, err)
		}
		return nil
	}

	// Phase 1: explicit parallel translation (the Parallel Semantic
	// Analyzer and the Parallel Region Detransformer). Module-level: it
	// deletes outlined functions and rewrites their callers.
	pragmas := map[*ir.Block]*decomp.PragmaInfo{}
	if cfg.ExplicitParallelism {
		sp = tc.StartStage("parallel-detransform")
		pragmas, err = DetransformParallelRegions(work)
		sp.End()
		if err != nil {
			return nil, err
		}
		am.InvalidateAll()
		if err := verifyStage("parallel-detransform"); err != nil {
			return nil, err
		}
		res.Stats.ParallelRegions = len(pragmas)
		tc.Count("splendid.parallel-regions", len(pragmas))
	}

	// Phase 2: natural control flow and natural address expressions.
	// Mem2Reg first promotes reduction cells (and any other plain scalar
	// slots the detransformation exposed) into SSA values so they print
	// as ordinary variables. Each stage is function-local, so it fans out
	// across the scheduler; stage boundaries remain barriers.
	if cfg.ExplicitParallelism {
		sp = tc.StartStage("mem2reg-promote")
		err = passes.ScheduleFunctionsMetered(work, opts.Workers, func(f *ir.Function) error {
			_, err := runFnPass(passes.Mem2RegPass, f, am, tc)
			return err
		}, sm)
		sp.End()
		if err != nil {
			return nil, err
		}
		if err := verifyStage("mem2reg-promote"); err != nil {
			return nil, err
		}
	}
	if cfg.RestoreForLoops {
		sp = tc.StartStage("derotate")
		err = passes.ScheduleFunctionsMetered(work, opts.Workers, func(f *ir.Function) error {
			n := DerotateLoopsOpts(f, am, tc)
			am.Invalidate(f)
			if n > 0 {
				mu.Lock()
				res.Stats.DerotatedLoops += n
				mu.Unlock()
			}
			return nil
		}, sm)
		sp.End()
		if err != nil {
			return nil, err
		}
		if err := verifyStage("derotate"); err != nil {
			return nil, err
		}
	}
	if cfg.FoldExpressions {
		sp = tc.StartStage("rematerialize")
		err = passes.ScheduleFunctionsMetered(work, opts.Workers, func(f *ir.Function) error {
			RematerializeAddresses(f)
			am.Invalidate(f)
			return nil
		}, sm)
		sp.End()
		if err != nil {
			return nil, err
		}
		if err := verifyStage("rematerialize"); err != nil {
			return nil, err
		}
	}
	sp = tc.StartStage("cleanup")
	_, err = passes.RunPipelineConfig(work, passes.RunConfig{
		Analyses: am, Telemetry: tc, VerifyEach: opts.VerifyEach,
		Workers: opts.Workers, Metrics: opts.Metrics,
	}, passes.ConstFoldPass, passes.DCEPass, passes.SimplifyCFGPass)
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := work.Verify(); err != nil {
		return nil, err
	}
	// Marker block names may have been renamed by CFG cleanup only via
	// removal; refresh the pragma map from current names.
	sp = tc.StartStage("pragma-gen")
	pragmas = refreshPragmas(work, pragmas)
	res.Stats.PragmasEmitted = len(pragmas)
	tc.Count("splendid.pragmas", len(pragmas))
	sp.End()

	// Phase 3: variable generation + emission. Per-function and
	// independent, so it fans out too; results land in a module-ordered
	// slice, keeping the emitted file byte-identical at any worker count.
	file := &cast.File{}
	for _, g := range work.Globals {
		vd := &cast.VarDecl{T: decomp.CType(g.Elem), Name: g.Nam}
		if g.Init != nil {
			switch c := g.Init.(type) {
			case *ir.ConstInt:
				vd.Init = &cast.IntLit{V: c.V}
			case *ir.ConstFloat:
				vd.Init = &cast.FloatLit{V: c.V}
			}
		}
		file.Vars = append(file.Vars, vd)
	}
	slot := map[*ir.Function]int{}
	for _, f := range work.Funcs {
		if !f.IsDecl() {
			slot[f] = len(slot)
		}
	}
	fds := make([]*cast.FuncDecl, len(slot))
	err = passes.ScheduleFunctionsMetered(work, opts.Workers, func(f *ir.Function) error {
		var namer decomp.Namer
		sourceNames := map[string]bool{}
		var vg *VarGenStats
		if cfg.RenameVariables {
			vs := tc.StartSpan(telemetry.CatStage, "vargen", f.Nam)
			proposal, vstats := GenerateVariablesCtx(f, tc)
			vg = vstats
			final := FinalNamesCtx(f, proposal, tc)
			for _, w := range proposal {
				sourceNames[w] = true
			}
			namer = decomp.SourceNamer(valueStrings(final))
			vs.End()
		}
		info := &decomp.EmitInfo{}
		eopts := decomp.Options{
			Structured: true,
			ForLoops:   cfg.RestoreForLoops,
			Fold:       cfg.FoldExpressions,
			Name:       namer,
			PragmaFor:  pragmas,
			Info:       info,
		}
		cg := tc.StartSpan(telemetry.CatStage, "cfg-gen", f.Nam)
		fd := decomp.TranslateFunction(f, eopts)
		cg.End()
		fd.Name = publicName(f.Nam)
		fds[slot[f]] = fd

		mu.Lock()
		if vg != nil {
			res.Stats.VarGen.Proposed += vg.Proposed
			res.Stats.VarGen.Conflicts += vg.Conflicts
			res.Stats.VarGen.Named += vg.Named
		}
		res.Stats.DeclaredVars += len(info.DeclaredVars)
		for _, n := range info.DeclaredVars {
			if sourceNames[n] {
				res.Stats.SourceNamedVars++
			}
		}
		mu.Unlock()
		return nil
	}, sm)
	if err != nil {
		return nil, err
	}
	file.Funcs = append(file.Funcs, fds...)
	res.File = file
	res.C = cast.Print(file)
	return res, nil
}

// runFnPass executes one named pass on one function with span
// bookkeeping, mirroring the managed pipeline's per-pass step.
func runFnPass(p passes.Pass, f *ir.Function, am *analysis.Manager, tc *telemetry.Ctx) (bool, error) {
	cs, err := passes.RunPipelineFn(f, passes.RunConfig{Analyses: am, Telemetry: tc}, p)
	return cs, err
}

// valueStrings adapts a concrete name map to SourceNamer's input shape.
func valueStrings(final map[ir.Value]string) map[ir.Value]string { return final }

// publicName strips pipeline suffixes from function names in emitted C.
func publicName(n string) string {
	n = strings.ReplaceAll(n, ".", "_")
	return n
}

// refreshPragmas rebuilds the marker→pragma map against the current
// blocks (blocks may have been merged or renamed by cleanup passes).
func refreshPragmas(m *ir.Module, old map[*ir.Block]*decomp.PragmaInfo) map[*ir.Block]*decomp.PragmaInfo {
	// Index old pragma data by region sequence number (block names may
	// have changed under later rewrites; the recorded Seq has not).
	bySeq := map[int]*decomp.PragmaInfo{}
	for _, pi := range old {
		bySeq[pi.Seq] = pi
	}
	out := map[*ir.Block]*decomp.PragmaInfo{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if seq, ok := markerSeq(b.Nam); ok {
				if pi := bySeq[seq]; pi != nil {
					out[b] = pi
				} else {
					out[b] = &decomp.PragmaInfo{Schedule: "static", NoWait: true}
				}
			}
		}
	}
	return out
}

func markerSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, markerPrefix) {
		return 0, false
	}
	rest := name[len(markerPrefix):]
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:dot])
	if err != nil {
		return 0, false
	}
	return n, true
}
