package splendid

import (
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/interp"
	"repro/internal/passes"
)

// A dynamically-scheduled reduction's accumulator circulates through
// the dispatch head's phi. Collapsing the chunk-pull loop once dropped
// the back-edge value, so the sequentialized region stored the *seed*
// back into the accumulator cell and the whole sum vanished from the
// decompiled program — found by the differential oracle as a round-trip
// output mismatch. This pins the full path: detransform, decompile,
// recompile, execute, compare the accumulated scalar.
func TestDynamicReductionRoundTripValue(t *testing.T) {
	src := `
#define N 48
long A[N];
long total = 0;

void seed() {
  for (long i = 0; i < N; i++) {
    A[i] = i * 5 + 2;
  }
}
void kernel() {
  long acc = 0;
  #pragma omp parallel for schedule(dynamic, 4) reduction(+: acc)
  for (long i = 0; i < N; i++) {
    acc = acc + A[i];
  }
  total = acc;
}
`
	m, err := cfront.CompileSource(src, "dynred")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatalf("decompile: %v", err)
	}
	if !strings.Contains(res.C, "reduction(+: acc)") {
		t.Errorf("reduction clause missing from decompiled C:\n%s", res.C)
	}
	rec, err := cfront.CompileSource(res.C, "rec")
	if err != nil {
		t.Fatalf("recompile: %v\n%s", err, res.C)
	}
	passes.Optimize(rec)

	var want int64
	for i := int64(0); i < 48; i++ {
		want += i*5 + 2
	}
	for _, threads := range []int{1, 4} {
		mach := interp.NewMachine(rec, interp.Options{NumThreads: threads})
		mustRunFns(t, mach, "seed", "kernel")
		got := mach.GlobalMem("total").Cells[0].I
		if got != want {
			t.Fatalf("threads=%d: recompiled total = %d, want %d\n%s",
				threads, got, want, res.C)
		}
	}
}
