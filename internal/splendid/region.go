package splendid

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/decomp"
	"repro/internal/ir"
	"repro/internal/omp"
	"repro/internal/passes"
)

// regionInfo is what the Parallel Semantic Analyzer extracts from one
// outlined microtask (paper §4.1.1).
type regionInfo struct {
	fork      *ir.Instr
	microtask *ir.Function

	staticInit *ir.Instr
	staticFini *ir.Instr
	barrier    *ir.Instr // nil means the loop ran nowait
	gtidLoad   *ir.Instr

	// Dynamic worksharing: the dispatch pair replaces static init/fini.
	dynInit *ir.Instr
	dynNext *ir.Instr

	// initVal/ubVal are the original sequential loop parameters: the
	// values stored into the runtime's lower/upper slots before the
	// init call (paper §4.1.2 "loop parameters are restored by replacing
	// them with those used as arguments for the initialization call").
	initVal ir.Value
	ubVal   ir.Value
	// lbLoads/ubLoads read back the per-thread narrowed bounds.
	lbLoads []*ir.Instr
	ubLoads []*ir.Instr

	schedule int64
	// dispKind is the dispatch schedule constant (omp.SchedDynamic,
	// SchedGuided, or SchedAuto) when schedule == schedDynamic.
	dispKind int64
	chunk    int64
	step     int64

	// schedDynamic in the schedule field marks a dispatch-based loop.

	// combines are the atomic reduction-combine calls in the microtask
	// (paper §7 future work: reduction decompilation).
	combines []*ir.Instr
}

// markerPrefix labels restored parallel-loop headers through inlining.
const markerPrefix = "splendid.pfor."

// schedDynamic marks a dynamic worksharing region in regionInfo.schedule.
const schedDynamic = int64(-1)

// analyzeRegion inspects a fork call and its microtask. A nil result
// means the region does not match the supported OpenMP pattern (the
// paper's prototype scope: static worksharing loops).
func analyzeRegion(fork *ir.Instr) *regionInfo {
	mt := omp.Microtask(fork)
	if mt == nil || mt.IsDecl() {
		return nil
	}
	ri := &regionInfo{fork: fork, microtask: mt}
	var plower, pupper *ir.Instr
	mt.Instrs(func(in *ir.Instr) {
		switch {
		case omp.IsStaticInit(in):
			ri.staticInit = in
		case omp.IsStaticFini(in):
			ri.staticFini = in
		case omp.IsBarrier(in):
			ri.barrier = in
		case omp.IsDispatchInit(in):
			ri.dynInit = in
		case omp.IsDispatchNext(in):
			ri.dynNext = in
		case isAtomicCombineInstr(in):
			ri.combines = append(ri.combines, in)
		case in.Op == ir.OpLoad:
			if p, ok := in.Args[0].(*ir.Param); ok && len(mt.Params) > 0 && p == mt.Params[0] {
				ri.gtidLoad = in
			}
		}
	})
	if ri.dynInit != nil && ri.dynNext != nil {
		// Dynamic worksharing loop: bounds are value arguments of the
		// init call; per-chunk bounds are read back through the pointers
		// handed to dispatch_next.
		if len(ri.dynInit.Args) != 6 || len(ri.dynNext.Args) != 5 {
			return nil
		}
		// The schedule kind must be a known dispatch constant — the
		// re-sugared pragma names it (dynamic, guided, or auto), so an
		// unrecognized kind is an unsupported shape, not "dynamic".
		kind, ok := ri.dynInit.Args[1].(*ir.ConstInt)
		if !ok || !omp.IsDispatchSched(kind.V) {
			return nil
		}
		ri.schedule = schedDynamic
		ri.dispKind = kind.V
		ri.initVal = ri.dynInit.Args[2]
		ri.ubVal = ri.dynInit.Args[3]
		if c, ok := ri.dynInit.Args[5].(*ir.ConstInt); ok {
			ri.chunk = c.V
		}
		plow, _ := ri.dynNext.Args[2].(*ir.Instr)
		pup, _ := ri.dynNext.Args[3].(*ir.Instr)
		if plow == nil || pup == nil {
			return nil
		}
		nextPos := posOf(ri.dynNext)
		for _, use := range mt.Uses(plow) {
			if use.Op == ir.OpLoad && nextPos.before(posOf(use)) {
				ri.lbLoads = append(ri.lbLoads, use)
			}
		}
		for _, use := range mt.Uses(pup) {
			if use.Op == ir.OpLoad && nextPos.before(posOf(use)) {
				ri.ubLoads = append(ri.ubLoads, use)
			}
		}
		if len(ri.lbLoads) == 0 || len(ri.ubLoads) == 0 {
			return nil
		}
		return ri
	}
	if ri.staticInit == nil || ri.staticFini == nil || len(ri.staticInit.Args) != 8 {
		return nil
	}
	if sched, ok := ri.staticInit.Args[1].(*ir.ConstInt); ok {
		ri.schedule = sched.V
	}
	if incr, ok := ri.staticInit.Args[6].(*ir.ConstInt); ok {
		ri.step = incr.V
	}
	if chunk, ok := ri.staticInit.Args[7].(*ir.ConstInt); ok {
		ri.chunk = chunk.V
	}
	plower, _ = ri.staticInit.Args[3].(*ir.Instr)
	pupper, _ = ri.staticInit.Args[4].(*ir.Instr)
	if plower == nil || pupper == nil || plower.Op != ir.OpAlloca || pupper.Op != ir.OpAlloca {
		return nil
	}
	// Original loop parameters: the last stores into the slots before
	// the init call; per-thread bounds: loads after it.
	initPos := posOf(ri.staticInit)
	for _, use := range mt.Uses(plower) {
		switch {
		case use.Op == ir.OpStore && posOf(use).before(initPos):
			ri.initVal = use.Args[0]
		case use.Op == ir.OpLoad && initPos.before(posOf(use)):
			ri.lbLoads = append(ri.lbLoads, use)
		}
	}
	for _, use := range mt.Uses(pupper) {
		switch {
		case use.Op == ir.OpStore && posOf(use).before(initPos):
			ri.ubVal = use.Args[0]
		case use.Op == ir.OpLoad && initPos.before(posOf(use)):
			ri.ubLoads = append(ri.ubLoads, use)
		}
	}
	if ri.initVal == nil || ri.ubVal == nil || len(ri.lbLoads) == 0 || len(ri.ubLoads) == 0 {
		return nil
	}
	return ri
}

func isAtomicCombineInstr(in *ir.Instr) bool {
	_, ok := omp.IsAtomicCombine(in)
	return ok
}

type instrPos struct {
	blockIdx int
	instrIdx int
}

func posOf(in *ir.Instr) instrPos {
	f := in.Parent.Parent
	for bi, b := range f.Blocks {
		if b == in.Parent {
			return instrPos{bi, b.IndexOf(in)}
		}
	}
	return instrPos{-1, -1}
}

func (p instrPos) before(q instrPos) bool {
	if p.blockIdx != q.blockIdx {
		return p.blockIdx < q.blockIdx
	}
	return p.instrIdx < q.instrIdx
}

// detransformRegion rewrites one fork call (paper §4.1.2): it builds a
// sequentialized copy of the microtask — per-thread bounds replaced by
// the original loop parameters, runtime calls removed — inlines it at
// the fork site, and tags the restored loop header so the Pragma
// Generator can annotate it after emission. Returns the pragma recorded
// for the marker, or an error if the region does not match the supported
// pattern.
func detransformRegion(m *ir.Module, f *ir.Function, ri *regionInfo, seq int) (*decomp.PragmaInfo, error) {
	// Work on a clone so other fork sites (and the original microtask)
	// stay intact.
	mt2 := ir.CloneFunction(ri.microtask, ri.microtask.Nam+".detrans")
	// Re-locate the analysis results in the clone via re-analysis: the
	// clone is bitwise-identical in shape.
	fork2 := &ir.Instr{Op: ir.OpCall, Typ: ir.Void, Callee: m.FuncByName(omp.ForkCall),
		Args: append([]ir.Value{ri.fork.Args[0], ir.Value(mt2)}, ri.fork.Args[2:]...)}
	ri2 := analyzeRegion(fork2)
	if ri2 == nil {
		m.RemoveFunc(mt2)
		return nil, fmt.Errorf("microtask %s lost its shape under cloning", ri.microtask.Nam)
	}

	// Restore sequential loop parameters.
	for _, ld := range ri2.lbLoads {
		mt2.ReplaceAllUses(ld, ri2.initVal)
		ld.Parent.RemoveInstr(ld)
	}
	for _, ld := range ri2.ubLoads {
		mt2.ReplaceAllUses(ld, ri2.ubVal)
		ld.Parent.RemoveInstr(ld)
	}
	// Reductions: re-sequentialize each private partial. The partial phi
	// seeded with the operator's identity instead reads the caller's
	// accumulator cell, and the atomic combine becomes a plain store —
	// after inlining this is exactly the original sequential reduction.
	var reductionOps []string
	for _, combine := range ri2.combines {
		op, _ := omp.IsAtomicCombine(combine)
		if err := sequentializeReduction(mt2, combine); err != nil {
			m.RemoveFunc(mt2)
			return nil, err
		}
		reductionOps = append(reductionOps, op)
	}
	// Remove the parallel execution setup instructions. Dynamic regions
	// additionally collapse the chunk-pull loop around the body.
	if ri2.schedule == schedDynamic {
		if err := collapseDispatchLoop(mt2, ri2); err != nil {
			m.RemoveFunc(mt2)
			return nil, err
		}
	}
	for _, in := range []*ir.Instr{ri2.staticInit, ri2.staticFini, ri2.barrier} {
		if in != nil && in.Parent != nil {
			in.Parent.RemoveInstr(in)
		}
	}
	passes.DCE(mt2) // allocas, their stores, and the gtid load die here
	passes.SimplifyCFG(mt2)

	// Tag the parallelized loop: the worksharing loop is the outermost
	// loop of the microtask (inner loops are its sequential body).
	marker := fmt.Sprintf("%s%d.", markerPrefix, seq)
	li := analysis.FindLoops(mt2, analysis.NewDomTree(mt2))
	if len(li.Top) != 1 {
		m.RemoveFunc(mt2)
		return nil, fmt.Errorf("microtask %s has %d top-level loops after detransformation, want 1",
			ri.microtask.Nam, len(li.Top))
	}
	li.Top[0].Header.Nam = marker + li.Top[0].Header.Nam
	mt2.RecomputeNameSeq()

	// Loop Inliner: replace the fork call with a direct call to the
	// sequentialized body and inline it, so arguments of the fork call
	// substitute the region's parameters (the name-inference channel of
	// paper §3.3).
	blk := ri.fork.Parent
	idx := blk.IndexOf(ri.fork)
	undefGtid := ir.Undef(ir.Ptr(ir.I32))
	call := &ir.Instr{
		Op: ir.OpCall, Typ: ir.Void, Callee: mt2,
		Args: append([]ir.Value{undefGtid, undefGtid}, omp.SharedArgs(ri.fork)...),
	}
	blk.Remove(idx)
	blk.InsertAt(idx, call)
	if !passes.InlineCall(call) {
		return nil, fmt.Errorf("failed to inline detransformed region %s", mt2.Nam)
	}
	m.RemoveFunc(mt2)

	pi := &decomp.PragmaInfo{Seq: seq, Schedule: "static", NoWait: ri.barrier == nil,
		ReductionOps: reductionOps}
	if ri2.schedule == schedDynamic {
		// Re-sugar the dispatch kind by name; analyzeRegion guaranteed it
		// is a known one. schedule(auto) carries no chunk clause — its
		// chunk argument is a placeholder the runtime ignores.
		name, _ := omp.SchedName(ri2.dispKind)
		pi.Schedule = name
		pi.NoWait = false
		if ri2.dispKind != omp.SchedAuto && ri2.chunk > 1 {
			pi.Chunk = int(ri2.chunk)
		}
	} else if ri2.chunk > 1 {
		pi.Chunk = int(ri2.chunk)
	}
	return pi, nil
}

// collapseDispatchLoop sequentializes a dynamic worksharing region: the
// chunk-pull loop (while dispatch_next: run [lo,hi]) becomes a single
// pass over the full iteration space. The per-chunk bound loads were
// already replaced with the original loop parameters, so it remains to
// run the dispatch head exactly once and to delete the runtime calls.
func collapseDispatchLoop(mt *ir.Function, ri *regionInfo) error {
	head := ri.dynNext.Parent
	term := head.Terminator()
	if term == nil || term.Op != ir.OpCondBr {
		return fmt.Errorf("dispatch head of %s has no conditional branch", mt.Nam)
	}
	// The "has work" side is the one the condition enters on nonzero.
	cmp, ok := term.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return fmt.Errorf("dispatch condition of %s is not a compare", mt.Nam)
	}
	bodySide, endSide := term.Blocks[0], term.Blocks[1]
	if cmp.Pred == ir.CmpEQ {
		bodySide, endSide = endSide, bodySide
	}
	// Back edges into the head come from inside the pull loop; redirect
	// them to the end so the head runs once.
	dom := analysis.NewDomTree(mt)
	var moved []*ir.Block
	for _, p := range head.Preds() {
		if dom.Dominates(head, p) {
			moved = append(moved, p)
		}
	}
	if len(endSide.Phis()) > 0 {
		return fmt.Errorf("dispatch exit of %s carries phis", mt.Nam)
	}
	// The head's phis (reduction accumulators circulating through the
	// pull loop) feed the code after it. Once the back edges land on the
	// exit directly, the value that used to flow around into the head
	// must reach that code instead — otherwise every use after the loop
	// degenerates to the phi's initial value and the accumulation is
	// silently dropped.
	for _, phi := range head.Phis() {
		if len(moved) == 0 {
			break
		}
		var exit ir.Value
		if len(moved) == 1 {
			exit = phi.PhiIncoming(moved[0])
		} else {
			nphi := &ir.Instr{Op: ir.OpPhi, Typ: phi.Typ, Nam: mt.FreshName(phi.Nam + ".exit")}
			for _, p := range moved {
				nphi.Args = append(nphi.Args, phi.PhiIncoming(p))
				nphi.Blocks = append(nphi.Blocks, p)
			}
			endSide.InsertAt(0, nphi)
			exit = nphi
		}
		for _, use := range mt.Uses(phi) {
			if use == exit {
				continue
			}
			if use.Parent == endSide || dom.Dominates(endSide, use.Parent) {
				use.ReplaceUses(phi, exit)
			}
		}
		for _, p := range moved {
			phi.RemovePhiIncoming(p)
		}
	}
	for _, p := range moved {
		p.Terminator().ReplaceBlock(head, endSide)
	}
	term.Op = ir.OpBr
	term.Args = nil
	term.Blocks = []*ir.Block{bodySide}
	// Delete the runtime calls; the compare dies with them under DCE.
	ri.dynNext.Parent.RemoveInstr(ri.dynNext)
	if ri.dynInit.Parent != nil {
		ri.dynInit.Parent.RemoveInstr(ri.dynInit)
	}
	return nil
}

// sequentializeReduction rewrites one atomic combine inside a cloned
// microtask: identity-seeded partials become continuations of the
// caller's accumulator cell, and the combine becomes a plain store.
func sequentializeReduction(mt *ir.Function, combine *ir.Instr) error {
	redPtr := combine.Args[0]
	partial := combine.Args[1]
	entry := mt.Entry()

	// Load the caller's accumulator at function entry.
	load := &ir.Instr{Op: ir.OpLoad, Typ: ir.ElemOf(redPtr.Type()),
		Nam: mt.FreshName("red.init"), Args: []ir.Value{redPtr}}
	entry.InsertAt(0, load)

	// Replace every identity-constant incoming of the partial chain with
	// the loaded value: the fini merge phi and the in-loop accumulator.
	replaced := 0
	var fixPhi func(phi *ir.Instr)
	seen := map[*ir.Instr]bool{}
	fixPhi = func(phi *ir.Instr) {
		if phi == nil || phi.Op != ir.OpPhi || seen[phi] {
			return
		}
		seen[phi] = true
		for i, a := range phi.Args {
			switch a.(type) {
			case *ir.ConstInt, *ir.ConstFloat:
				phi.Args[i] = load
				replaced++
			case *ir.Instr:
				ai := a.(*ir.Instr)
				if ai.Op == ir.OpPhi {
					fixPhi(ai)
				} else if ai.Op.IsBinary() {
					// The update op; its phi operand is the accumulator.
					for _, b := range ai.Args {
						if bp, ok := b.(*ir.Instr); ok && bp.Op == ir.OpPhi {
							fixPhi(bp)
						}
					}
				}
			}
		}
	}
	pphi, ok := partial.(*ir.Instr)
	if !ok || pphi.Op != ir.OpPhi {
		return fmt.Errorf("reduction partial is not a phi: %v", partial)
	}
	fixPhi(pphi)
	if replaced == 0 {
		return fmt.Errorf("no identity seeds found for reduction in %s", mt.Nam)
	}

	// The combine becomes a plain store of the final partial.
	blk := combine.Parent
	idx := blk.IndexOf(combine)
	blk.Remove(idx)
	blk.InsertAt(idx, &ir.Instr{Op: ir.OpStore, Typ: ir.Void,
		Args: []ir.Value{partial, redPtr}})
	return nil
}

// DetransformParallelRegions applies the Parallel Semantic Analyzer and
// Region Detransformer to every fork call in the module. It returns the
// pragma map keyed by marker-named loop header blocks, ready for the
// control-flow generator. Microtasks with no remaining callers are
// dropped from the module.
func DetransformParallelRegions(m *ir.Module) (map[*ir.Block]*decomp.PragmaInfo, error) {
	seq := 0
	bySeq := map[int]*decomp.PragmaInfo{}
	var fns []*ir.Function
	fns = append(fns, m.Funcs...)
	for _, f := range fns {
		if f.IsDecl() || f.Outlined {
			continue
		}
		for {
			var fork *ir.Instr
			f.Instrs(func(in *ir.Instr) {
				if fork == nil && omp.IsForkCall(in) {
					fork = in
				}
			})
			if fork == nil {
				break
			}
			ri := analyzeRegion(fork)
			if ri == nil {
				return nil, fmt.Errorf("@%s: unsupported parallel region shape", f.Nam)
			}
			pi, err := detransformRegion(m, f, ri, seq)
			if err != nil {
				return nil, fmt.Errorf("@%s: %w", f.Nam, err)
			}
			bySeq[seq] = pi
			seq++
		}
	}
	// Drop now-unreferenced microtasks.
	var keep []*ir.Function
	for _, fn := range m.Funcs {
		if fn.Outlined && !functionReferenced(m, fn) {
			continue
		}
		keep = append(keep, fn)
	}
	m.Funcs = keep

	// Recover the pragma map from marker block names, joining the
	// per-region pragma facts recorded during detransformation.
	pragmas := map[*ir.Block]*decomp.PragmaInfo{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if !strings.HasPrefix(b.Nam, markerPrefix) {
				continue
			}
			rest := b.Nam[len(markerPrefix):]
			if dot := strings.IndexByte(rest, '.'); dot > 0 {
				if n, err := atoi(rest[:dot]); err == nil && bySeq[n] != nil {
					pragmas[b] = bySeq[n]
					continue
				}
			}
			pragmas[b] = &decomp.PragmaInfo{Schedule: "static", NoWait: true}
		}
	}
	return pragmas, nil
}

func atoi(s string) (int, error) {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("not a number: %q", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, nil
}

func functionReferenced(m *ir.Module, fn *ir.Function) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Callee == ir.Value(fn) {
					return true
				}
				for _, a := range in.Args {
					if a == ir.Value(fn) {
						return true
					}
				}
			}
		}
	}
	return false
}
