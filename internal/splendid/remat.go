package splendid

import (
	"repro/internal/ir"
	"repro/internal/passes"
)

// RematerializeAddresses undoes loop-invariant code motion on address
// computations: a getelementptr with several uses is re-created
// immediately before each use, so subscripted accesses print as
// A[i][j] instead of flowing through hoisted row pointers. Address
// recomputation is semantically free, and the resulting source matches
// how programmers write array accesses — one of SPLENDID's deliberate
// naturalness trade-offs (the paper leaves performance-relevant
// transformations alone but reverses purely structural ones).
func RematerializeAddresses(f *ir.Function) bool {
	changed := false
	for round := 0; round < 10000; round++ {
		var target *ir.Instr
		f.Instrs(func(in *ir.Instr) {
			if target != nil || in.Op != ir.OpGEP {
				return
			}
			uses := nonDbgUses(f, in)
			if len(uses) > 1 {
				target = in
				return
			}
			// A hoisted address used in another block sinks back to its
			// use so it can fold into a subscript expression.
			if len(uses) == 1 && uses[0].Parent != in.Parent && uses[0].Op != ir.OpPhi {
				target = in
			}
		})
		if target == nil {
			break
		}
		for _, user := range nonDbgUses(f, target) {
			if user.Op == ir.OpPhi {
				continue // edge placement; leave the original for these
			}
			clone := &ir.Instr{
				Op: ir.OpGEP, Typ: target.Typ,
				Nam:     f.FreshName(target.Nam),
				Args:    append([]ir.Value{}, target.Args...),
				SrcLine: target.SrcLine,
			}
			blk := user.Parent
			blk.InsertAt(blk.IndexOf(user), clone)
			user.ReplaceUses(target, clone)
		}
		passes.DCE(f)
		changed = true
	}
	return changed
}

func nonDbgUses(f *ir.Function, v ir.Value) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgValue {
				continue
			}
			for _, a := range in.Args {
				if a == v {
					out = append(out, in)
					break
				}
			}
		}
	}
	return out
}
