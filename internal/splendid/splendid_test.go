package splendid

import (
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parallel"
	"repro/internal/passes"
)

// buildParallelIR runs C source through the paper's input pipeline:
// compile, -O2, Polly-style parallelization.
func buildParallelIR(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cfront.CompileSource(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	passes.Optimize(m)
	parallel.Parallelize(m, parallel.Options{})
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

const jacobiSrc = `
#define N 500
double A[N];
double B[N];

void seed() {
  for (long i = 0; i < N; i++) {
    A[i] = i * i % 13;
    B[i] = 0.0;
  }
}
void kernel() {
  for (long i = 1; i < N - 1; i++) {
    B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
  }
}
`

func TestFullDecompilationShape(t *testing.T) {
	m := buildParallelIR(t, jacobiSrc)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatalf("decompile: %v", err)
	}
	c := res.C
	for _, want := range []string{
		"#pragma omp parallel",
		"#pragma omp for schedule(static) nowait",
		"for (long i = 1; i <= 498; i++)",
		"B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("output missing %q:\n%s", want, c)
		}
	}
	for _, reject := range []string{"__kmpc", "goto", "do {"} {
		if strings.Contains(c, reject) {
			t.Errorf("output contains %q (not portable/natural):\n%s", reject, c)
		}
	}
	if res.Stats.ParallelRegions != 2 { // seed and kernel each have one
		t.Errorf("parallel regions = %d, want 2", res.Stats.ParallelRegions)
	}
	if res.Stats.DerotatedLoops < 1 {
		t.Error("no loops de-rotated")
	}
}

func TestVariantLadder(t *testing.T) {
	m := buildParallelIR(t, jacobiSrc)

	v1, err := Decompile(m, V1())
	if err != nil {
		t.Fatal(err)
	}
	// v1 keeps the runtime calls (not portable) but restores for loops.
	if !strings.Contains(v1.C, "__kmpc_fork_call") {
		t.Error("v1 should keep runtime calls")
	}
	if !strings.Contains(v1.C, "for (") {
		t.Error("v1 should emit for loops")
	}

	v2, err := Decompile(m, Portable())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(v2.C, "__kmpc") {
		t.Error("portable output must not reference the runtime")
	}
	if !strings.Contains(v2.C, "#pragma omp") {
		t.Error("portable output must carry OpenMP pragmas")
	}
	// v2 keeps register-flavored names; full restores source names.
	full, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.C, "for (long i = 1") {
		t.Errorf("full output did not restore variable name i:\n%s", full.C)
	}
}

// TestRoundTripPortability is the portability experiment in miniature
// (paper §5.2): SPLENDID output must recompile with the frontend (the
// "any host compiler" stand-in) and produce results identical to the
// original program, sequentially and in parallel.
func TestRoundTripPortability(t *testing.T) {
	m := buildParallelIR(t, jacobiSrc)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the original, unparallelized program.
	ref, err := cfront.CompileSource(jacobiSrc, "ref")
	if err != nil {
		t.Fatal(err)
	}
	refMach := interp.NewMachine(ref, interp.Options{})
	for _, fn := range []string{"seed", "kernel"} {
		if _, err := refMach.Run(fn); err != nil {
			t.Fatal(err)
		}
	}

	// Recompiled decompiled output, run with several team sizes.
	rec, err := cfront.CompileSource(res.C, "recompiled")
	if err != nil {
		t.Fatalf("recompile of SPLENDID output failed: %v\n%s", err, res.C)
	}
	passes.Optimize(rec)
	for _, threads := range []int{1, 4} {
		mach := interp.NewMachine(rec, interp.Options{NumThreads: threads})
		for _, fn := range []string{"seed", "kernel"} {
			if _, err := mach.Run(fn); err != nil {
				t.Fatalf("threads=%d run %s: %v", threads, fn, err)
			}
		}
		want := refMach.GlobalMem("B")
		got := mach.GlobalMem("B")
		for i := range want.Cells {
			if want.Cells[i].F != got.Cells[i].F {
				t.Fatalf("threads=%d: B[%d] = %v, want %v", threads, i, got.Cells[i], want.Cells[i])
			}
		}
	}
}

const gemmSrc = `
#define N 30
double A[N][N];
double B[N][N];
double C[N][N];

void seed() {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      A[i][j] = i + 2 * j;
      B[i][j] = i - j;
      C[i][j] = 0.0;
    }
  }
}
void kernel(double alpha, double beta) {
  for (long i = 0; i < N; i++) {
    for (long j = 0; j < N; j++) {
      C[i][j] = C[i][j] * beta;
      for (long k = 0; k < N; k++) {
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
      }
    }
  }
}
`

func TestRoundTripNestedLoops(t *testing.T) {
	m := buildParallelIR(t, gemmSrc)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	// Inner sequential loops must also come back as for loops.
	if strings.Contains(res.C, "do {") {
		t.Errorf("nested loops left as do-while:\n%s", res.C)
	}
	rec, err := cfront.CompileSource(res.C, "recompiled")
	if err != nil {
		t.Fatalf("recompile failed: %v\n%s", err, res.C)
	}
	passes.Optimize(rec)

	ref, _ := cfront.CompileSource(gemmSrc, "ref")
	refMach := interp.NewMachine(ref, interp.Options{})
	alpha, beta := interp.FloatV(1.5), interp.FloatV(0.5)
	if _, err := refMach.Run("seed"); err != nil {
		t.Fatal(err)
	}
	if _, err := refMach.Run("kernel", alpha, beta); err != nil {
		t.Fatal(err)
	}

	mach := interp.NewMachine(rec, interp.Options{NumThreads: 4})
	if _, err := mach.Run("seed"); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("kernel", alpha, beta); err != nil {
		t.Fatalf("recompiled kernel: %v\n%s", err, res.C)
	}
	want := refMach.GlobalMem("C")
	got := mach.GlobalMem("C")
	for i := range want.Cells {
		if want.Cells[i].F != got.Cells[i].F {
			t.Fatalf("C[%d] = %v, want %v", i, got.Cells[i], want.Cells[i])
		}
	}
}

func TestVariableRenamingRecoversSourceNames(t *testing.T) {
	m := buildParallelIR(t, gemmSrc)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"i", "j", "k", "alpha", "beta"} {
		if !containsWord(res.C, name) {
			t.Errorf("source variable %q not recovered:\n%s", name, res.C)
		}
	}
	if res.Stats.VarGen.Named == 0 {
		t.Error("no variables named from metadata")
	}
}

func containsWord(s, w string) bool {
	for i := 0; i+len(w) <= len(s); i++ {
		if s[i:i+len(w)] != w {
			continue
		}
		beforeOK := i == 0 || !isWordChar(s[i-1])
		afterOK := i+len(w) == len(s) || !isWordChar(s[i+len(w)])
		if beforeOK && afterOK {
			return true
		}
	}
	return false
}

func isWordChar(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// TestConflictingDefinitionRemoval reproduces the paper's Figure 5
// situation: two SSA values map to the same source variable with
// overlapping lifetimes; only one may keep the name.
func TestConflictingDefinitionRemoval(t *testing.T) {
	m := ir.MustParse(`
define i64 @f(i64 %a) {
entry:
  %x1 = add i64 %a, 1
  call void @llvm.dbg.value(metadata i64 %x1, metadata !"var")
  %x2 = add i64 %a, 2
  call void @llvm.dbg.value(metadata i64 %x2, metadata !"var")
  %use1 = mul i64 %x1, 2
  %use2 = mul i64 %x2, 3
  %sum = add i64 %use1, %use2
  ret i64 %sum
}
`)
	f := m.FuncByName("f")
	proposal, stats := GenerateVariables(f)
	// Exactly one of x1/x2 may carry "var".
	named := 0
	for v, w := range proposal {
		if w == "var" {
			named++
			_ = v
		}
	}
	if named != 1 {
		t.Errorf("values named var = %d, want 1 (proposal=%v, stats=%+v)", named, proposal, stats)
	}
	if stats.Conflicts == 0 {
		t.Error("conflict not detected")
	}
}

func TestNoConflictWhenLifetimesDisjoint(t *testing.T) {
	// Figure 5's %3: a later mapping with no overlapping use keeps the name.
	m := ir.MustParse(`
define i64 @g(i64 %a) {
entry:
  %x1 = add i64 %a, 1
  call void @llvm.dbg.value(metadata i64 %x1, metadata !"var")
  %use1 = mul i64 %x1, 2
  %x2 = add i64 %use1, 2
  call void @llvm.dbg.value(metadata i64 %x2, metadata !"var")
  %use2 = mul i64 %x2, 3
  ret i64 %use2
}
`)
	f := m.FuncByName("g")
	proposal, stats := GenerateVariables(f)
	if proposal[findInstr(f, "x1")] != "var" || proposal[findInstr(f, "x2")] != "var" {
		t.Errorf("disjoint lifetimes lost their names: %v (stats %+v)", proposal, stats)
	}
}

func findInstr(f *ir.Function, name string) ir.Value {
	var out ir.Value
	f.Instrs(func(in *ir.Instr) {
		if in.Nam == name {
			out = in
		}
	})
	return out
}

func TestGuardCheckEliminated(t *testing.T) {
	m := buildParallelIR(t, jacobiSrc)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	// The rotation/runtime guard must not survive as an if around the loop.
	kernel := extractFunc(res.C, "kernel")
	if strings.Contains(kernel, "if (") {
		t.Errorf("guard check not eliminated:\n%s", kernel)
	}
}

func extractFunc(c, name string) string {
	idx := strings.Index(c, "void "+name)
	if idx < 0 {
		return c
	}
	return c[idx:]
}

// TestAliasCheckSurvivesNaturally: the Figure 2 case study — versioned
// loops decompile into an if with the alias check, a parallel branch,
// and a sequential fallback loop.
func TestAliasCheckSurvives(t *testing.T) {
	src := `
#define N 1000
void MayAlias(double* A, double* B, double* C) {
  for (long i = 0; i < N - 1; i++) {
    A[i+1] = M_PI * B[i] + exp(C[i]);
  }
}
`
	m := buildParallelIR(t, src)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	c := res.C
	if !strings.Contains(c, "#pragma omp") {
		t.Errorf("no pragma in versioned decompilation:\n%s", c)
	}
	if !strings.Contains(c, "if (") {
		t.Errorf("alias check not visible:\n%s", c)
	}
	// Source parameter names recovered.
	for _, w := range []string{"A", "B", "C"} {
		if !containsWord(c, w) {
			t.Errorf("parameter %s not recovered:\n%s", w, c)
		}
	}
	if !strings.Contains(c, "3.14159") {
		t.Errorf("M_PI constant lost:\n%s", c)
	}
}

func TestDecompileDoesNotMutateInput(t *testing.T) {
	m := buildParallelIR(t, jacobiSrc)
	before := m.Print()
	if _, err := Decompile(m, Full()); err != nil {
		t.Fatal(err)
	}
	if m.Print() != before {
		t.Error("Decompile mutated its input module")
	}
}

func TestDerotateSequentialOnlyModule(t *testing.T) {
	// A purely sequential module: V1 restores for loops; Full round-trips.
	src := `
long trisum(long n) {
  long s = 0;
  for (long i = 0; i < n; i++) {
    for (long j = 0; j <= i; j++) {
      s = s + 1;
    }
  }
  return s;
}
`
	m, err := cfront.CompileSource(src, "seq")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.C, "do {") || strings.Contains(res.C, "goto") {
		t.Errorf("sequential loops not restored to for:\n%s", res.C)
	}
	rec, err := cfront.CompileSource(res.C, "rec")
	if err != nil {
		t.Fatalf("recompile: %v\n%s", err, res.C)
	}
	mach := interp.NewMachine(rec, interp.Options{})
	ret, err := mach.Run("trisum", interp.IntV(10))
	if err != nil {
		t.Fatal(err)
	}
	if ret.I != 55 {
		t.Errorf("trisum(10) = %d, want 55\n%s", ret.I, res.C)
	}
}

// TestFigure1Golden pins the exact emission for the paper's motivating
// example (Figure 1): any change to the decompiled text of the jacobi
// hot loop is a deliberate decision, not drift.
func TestFigure1Golden(t *testing.T) {
	src := `
#define N 4000
double A[N];
double B[N];
void kernel() {
  for (long i = 1; i < N - 1; i++) {
    B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
  }
}
`
	m := buildParallelIR(t, src)
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	want := `double A[4000];
double B[4000];

void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (long i = 1; i <= 3998; i++) {
      B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
    }
  }
}
`
	if res.C != want {
		t.Errorf("Figure 1 output drifted:\n--- got ---\n%s\n--- want ---\n%s", res.C, want)
	}
}

// TestInliningNameInference exercises the paper's §3.3 channel: a value
// with no debug info inside the outlined region (the region's pointer
// parameter) inherits its name from the caller's debug metadata once the
// Loop Inliner substitutes the fork-call argument.
func TestInliningNameInference(t *testing.T) {
	src := `
void compute(long n) {
  double* data = (double*) malloc(n * sizeof(double));
  for (long i = 0; i < n; i++) {
    data[i] = i * 0.5;
  }
  free(data);
}
`
	m := buildParallelIR(t, src)
	// The loop must have been parallelized for the test to mean anything.
	if !strings.Contains(m.Print(), "call void @__kmpc_fork_call") {
		t.Fatalf("malloc'd loop not parallelized:\n%s", m.Print())
	}
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.C, "data[i] = ") {
		t.Errorf("caller variable name not inferred through inlining:\n%s", res.C)
	}
}
