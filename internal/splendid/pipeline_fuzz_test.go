package splendid

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/interp"
	"repro/internal/parallel"
	"repro/internal/passes"
)

// The pipeline property: for any generated affine kernel,
//
//	decompile(parallelize(O2(compile(src)))) recompiles, and running it
//	with any team size produces the sequential program's exact outputs.
//
// Kernels are generated from a deterministic PRNG: 1-2 loop nests over
// three arrays with small constant subscript offsets, safe margins, and
// a mix of int and float arithmetic.

type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}

func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

func genKernel(seed uint64) string {
	r := &prng{s: seed*2654435761 + 1}
	n := 64 + r.intn(3)*32

	var b strings.Builder
	fmt.Fprintf(&b, "#define N %d\n", n)
	b.WriteString("double A[N];\ndouble B[N];\ndouble C[N];\n\n")
	b.WriteString("void seed() {\n  for (long i = 0; i < N; i++) {\n")
	b.WriteString("    A[i] = (i * 7 + 3) % 13;\n")
	b.WriteString("    B[i] = (i * 5 + 1) % 11;\n")
	b.WriteString("    C[i] = (i * 3 + 2) % 7;\n  }\n}\n\n")

	arrays := []string{"A", "B", "C"}
	ops := []string{"+", "-", "*"}
	b.WriteString("void kernel() {\n")
	loops := 1 + r.intn(2)
	for l := 0; l < loops; l++ {
		dst := arrays[r.intn(3)]
		src1 := arrays[r.intn(3)]
		src2 := arrays[r.intn(3)]
		// Keep the write subscript plain and reads offset: guaranteed
		// DOALL when dst differs from both sources; otherwise the read
		// offsets are zero so the access set stays per-iteration.
		off1, off2 := r.intn(5)-2, r.intn(5)-2
		if src1 == dst {
			off1 = 0
		}
		if src2 == dst {
			off2 = 0
		}
		op := ops[r.intn(3)]
		scale := []string{"0.5", "1.5", "2.0", "3.0"}[r.intn(4)]
		fmt.Fprintf(&b, "  for (long i = 2; i < N - 2; i++) {\n")
		fmt.Fprintf(&b, "    %s[i] = %s[i%s] %s %s[i%s] * %s;\n",
			dst, src1, offStr(off1), op, src2, offStr(off2), scale)
		fmt.Fprintf(&b, "  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func offStr(k int) string {
	switch {
	case k > 0:
		return fmt.Sprintf("+%d", k)
	case k < 0:
		return fmt.Sprintf("%d", k)
	}
	return ""
}

func TestPipelinePropertyOnGeneratedKernels(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		src := genKernel(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Sequential reference.
			ref, err := cfront.CompileSource(src, "ref")
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, src)
			}
			refMach := interp.NewMachine(ref, interp.Options{})
			mustRunFns(t, refMach, "seed", "kernel")

			// Pipeline.
			m, err := cfront.CompileSource(src, "gen")
			if err != nil {
				t.Fatal(err)
			}
			passes.Optimize(m)
			parallel.Parallelize(m, parallel.Options{})
			if err := m.Verify(); err != nil {
				t.Fatalf("verify parallel IR: %v\n%s", err, src)
			}
			res, err := Decompile(m, Full())
			if err != nil {
				t.Fatalf("decompile: %v\n%s", err, src)
			}
			rec, err := cfront.CompileSource(res.C, "rec")
			if err != nil {
				t.Fatalf("recompile: %v\n--- source ---\n%s\n--- decompiled ---\n%s", err, src, res.C)
			}
			passes.Optimize(rec)

			for _, threads := range []int{1, 3} {
				mach := interp.NewMachine(rec, interp.Options{NumThreads: threads})
				mustRunFns(t, mach, "seed", "kernel")
				for _, g := range []string{"A", "B", "C"} {
					want := refMach.GlobalMem(g)
					got := mach.GlobalMem(g)
					for i := range want.Cells {
						if want.Cells[i].F != got.Cells[i].F {
							t.Fatalf("threads=%d: %s[%d] = %v, want %v\n--- source ---\n%s\n--- decompiled ---\n%s",
								threads, g, i, got.Cells[i].F, want.Cells[i].F, src, res.C)
						}
					}
				}
			}
		})
	}
}

// TestNegativeStepPipeline covers descending loops through the whole
// pipeline (parallelize, decompile, recompile).
func TestNegativeStepPipeline(t *testing.T) {
	src := `
#define N 400
double A[N];
double B[N];
void seed() {
  for (long i = 0; i < N; i++) {
    B[i] = (i % 9) * 1.5;
  }
}
void kernel() {
  for (long i = N - 1; i >= 0; i--) {
    A[i] = B[i] * 2.0;
  }
}
`
	ref, _ := cfront.CompileSource(src, "ref")
	refMach := interp.NewMachine(ref, interp.Options{})
	mustRunFns(t, refMach, "seed", "kernel")

	m, err := cfront.CompileSource(src, "neg")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	pres := parallel.Parallelize(m, parallel.Options{})
	if pres.Parallelized["kernel"] != 1 {
		t.Fatalf("descending loop not parallelized:\n%s", m.Print())
	}
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.C, "i--") && !strings.Contains(res.C, "i = i - 1") {
		t.Errorf("descending for loop not restored:\n%s", res.C)
	}
	rec, err := cfront.CompileSource(res.C, "rec")
	if err != nil {
		t.Fatalf("recompile: %v\n%s", err, res.C)
	}
	passes.Optimize(rec)
	mach := interp.NewMachine(rec, interp.Options{NumThreads: 4})
	mustRunFns(t, mach, "seed", "kernel")
	want := refMach.GlobalMem("A")
	got := mach.GlobalMem("A")
	for i := range want.Cells {
		if want.Cells[i].F != got.Cells[i].F {
			t.Fatalf("A[%d] = %v, want %v\n%s", i, got.Cells[i].F, want.Cells[i].F, res.C)
		}
	}
}

// TestConditionalBodyPipeline: control flow inside a parallelized loop
// body must survive decompilation as a structured if and round-trip.
func TestConditionalBodyPipeline(t *testing.T) {
	src := `
#define N 500
double A[N];
double B[N];
void seed() {
  for (long i = 0; i < N; i++) {
    B[i] = i % 17;
  }
}
void kernel() {
  for (long i = 0; i < N; i++) {
    if (B[i] > 8.0) {
      A[i] = B[i] * 2.0;
    } else {
      A[i] = B[i] + 1.0;
    }
  }
}
`
	ref, _ := cfront.CompileSource(src, "ref")
	refMach := interp.NewMachine(ref, interp.Options{})
	mustRunFns(t, refMach, "seed", "kernel")

	m, err := cfront.CompileSource(src, "cond")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	pres := parallel.Parallelize(m, parallel.Options{})
	if pres.Parallelized["kernel"] != 1 {
		t.Fatalf("conditional-body loop not parallelized:\n%s", m.Print())
	}
	res, err := Decompile(m, Full())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.C, "if (") || strings.Contains(res.C, "goto") {
		t.Errorf("conditional not structured:\n%s", res.C)
	}
	rec, err := cfront.CompileSource(res.C, "rec")
	if err != nil {
		t.Fatalf("recompile: %v\n%s", err, res.C)
	}
	passes.Optimize(rec)
	mach := interp.NewMachine(rec, interp.Options{NumThreads: 4})
	mustRunFns(t, mach, "seed", "kernel")
	want := refMach.GlobalMem("A")
	got := mach.GlobalMem("A")
	for i := range want.Cells {
		if want.Cells[i].F != got.Cells[i].F {
			t.Fatalf("A[%d] = %v, want %v\n%s", i, got.Cells[i].F, want.Cells[i].F, res.C)
		}
	}
}
