package decomp

import (
	"repro/internal/cast"
)

// privatizeRegionLocals moves the declaration of every variable that is
// referenced only inside one parallel region from function scope into
// that region. This realizes the paper's §4.1.3 observation — "if the
// earliest definition of a variable is inside the parallel region,
// declaring it inside the parallel region by default makes the variable
// private" — and it is a correctness requirement for recompilation:
// a worker-local temporary left at function scope would be shared and
// raced on.
func privatizeRegionLocals(fd *cast.FuncDecl) {
	// Count name occurrences across the whole body, and find the
	// top-level declarations we are allowed to move.
	total := map[string]int{}
	countNames(fd.Body, total)

	var decls []*cast.Decl
	declIdx := map[string]int{}
	for i, st := range fd.Body.Stmts {
		if d, ok := st.(*cast.Decl); ok && d.Init == nil {
			decls = append(decls, d)
			declIdx[d.Name] = i
		}
	}
	if len(decls) == 0 {
		return
	}

	moved := map[string]bool{}
	var visitRegions func(stmts []cast.Stmt)
	visitRegions = func(stmts []cast.Stmt) {
		for _, st := range stmts {
			switch x := st.(type) {
			case *cast.OmpParallel:
				inRegion := map[string]int{}
				countNames(x.Body, inRegion)
				for _, d := range decls {
					if moved[d.Name] {
						continue
					}
					// All mentions (minus the top-level declaration
					// itself) live inside this region: privatize.
					if inRegion[d.Name] > 0 && inRegion[d.Name] == total[d.Name] {
						moved[d.Name] = true
						x.Body.Stmts = append([]cast.Stmt{&cast.Decl{T: d.T, Name: d.Name}}, x.Body.Stmts...)
					}
				}
				// Regions do not nest further, but walk anyway.
				visitRegions(x.Body.Stmts)
			case *cast.If:
				visitRegions(x.Then.Stmts)
				if eb, ok := x.Else.(*cast.Block); ok {
					visitRegions(eb.Stmts)
				} else if ei, ok := x.Else.(*cast.If); ok {
					visitRegions([]cast.Stmt{ei})
				}
			case *cast.For:
				visitRegions(x.Body.Stmts)
			case *cast.While:
				visitRegions(x.Body.Stmts)
			case *cast.DoWhile:
				visitRegions(x.Body.Stmts)
			case *cast.Block:
				visitRegions(x.Stmts)
			case *cast.OmpFor:
				visitRegions(x.Loop.Body.Stmts)
			case *cast.OmpParallelFor:
				visitRegions(x.Loop.Body.Stmts)
			}
		}
	}
	visitRegions(fd.Body.Stmts)

	if len(moved) == 0 {
		return
	}
	var kept []cast.Stmt
	for _, st := range fd.Body.Stmts {
		if d, ok := st.(*cast.Decl); ok && moved[d.Name] && d.Init == nil {
			continue
		}
		kept = append(kept, st)
	}
	fd.Body.Stmts = kept
}

// countNames tallies identifier occurrences (in expressions and
// declarations) under a statement tree.
func countNames(n any, out map[string]int) {
	switch x := n.(type) {
	case nil:
	case *cast.Block:
		for _, s := range x.Stmts {
			countNames(s, out)
		}
	case *cast.Decl:
		countNames(x.Init, out)
	case *cast.ExprStmt:
		countNames(x.X, out)
	case *cast.If:
		countNames(x.Cond, out)
		countNames(x.Then, out)
		if x.Else != nil {
			countNames(x.Else, out)
		}
	case *cast.For:
		if x.Init != nil {
			countNames(x.Init, out)
		}
		countNames(x.Cond, out)
		if x.Post != nil {
			countNames(x.Post, out)
		}
		countNames(x.Body, out)
	case *cast.While:
		countNames(x.Cond, out)
		countNames(x.Body, out)
	case *cast.DoWhile:
		countNames(x.Cond, out)
		countNames(x.Body, out)
	case *cast.Return:
		countNames(x.X, out)
	case *cast.OmpParallel:
		countNames(x.Body, out)
	case *cast.OmpFor:
		countNames(x.Loop, out)
	case *cast.OmpParallelFor:
		countNames(x.Loop, out)
	case *cast.Ident:
		out[x.Name]++
	case *cast.Bin:
		countNames(x.L, out)
		countNames(x.R, out)
	case *cast.Un:
		countNames(x.X, out)
	case *cast.Index:
		countNames(x.Base, out)
		countNames(x.Idx, out)
	case *cast.Call:
		for _, a := range x.Args {
			countNames(a, out)
		}
	case *cast.CastE:
		countNames(x.X, out)
	case *cast.Ternary:
		countNames(x.C, out)
		countNames(x.T, out)
		countNames(x.F, out)
	case *cast.Assign:
		countNames(x.LHS, out)
		countNames(x.RHS, out)
	case *cast.IncDec:
		countNames(x.X, out)
	case *cast.Paren:
		countNames(x.X, out)
	}
}
