package decomp

import (
	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/ir"
)

// TranslateFunction decompiles one IR function into a C function.
func TranslateFunction(f *ir.Function, opts Options) *cast.FuncDecl {
	tr := newTranslator(f, opts)
	s := &structurizer{
		tr:        tr,
		f:         f,
		opts:      opts,
		emitted:   map[*ir.Block]bool{},
		gotoTgt:   map[*ir.Block]bool{},
		forIVMemo: map[*ir.Block]*ir.Instr{},
		noTopDecl: map[string]bool{},
	}
	if opts.Structured {
		s.dom = analysis.NewDomTree(f)
		s.pdom = analysis.NewPostDomTree(f)
		s.li = analysis.FindLoops(f, s.dom)
	}

	var body []cast.Stmt
	if opts.Structured {
		body = s.emitSeq(f.Entry(), nil)
	} else {
		body = s.emitRaw()
	}
	body = stripUnusedLabels(body, s.gotoTgt)

	fd := &cast.FuncDecl{
		Ret:  CType(f.Sig.Ret),
		Name: sanitize(f.Nam),
	}
	for _, p := range f.Params {
		fd.Params = append(fd.Params, cast.Param{T: CType(p.Typ), Name: tr.name(p)})
	}
	// Local declarations first, then the statements.
	var decls []cast.Stmt
	for _, name := range tr.declOrder {
		if s.noTopDecl[name] {
			continue
		}
		decls = append(decls, &cast.Decl{T: tr.declType[name], Name: name})
	}
	// A trailing bare return at the end of a void function is implicit
	// in C; dropping it reads more naturally.
	if ir.IsVoid(f.Sig.Ret) && len(body) > 0 {
		if r, ok := body[len(body)-1].(*cast.Return); ok && r.X == nil {
			body = body[:len(body)-1]
		}
	}
	fd.Body = &cast.Block{Stmts: append(decls, body...)}
	privatizeRegionLocals(fd)
	if opts.Info != nil {
		for _, p := range f.Params {
			opts.Info.DeclaredVars = append(opts.Info.DeclaredVars, tr.name(p))
		}
		opts.Info.DeclaredVars = append(opts.Info.DeclaredVars, tr.declOrder...)
	}
	return fd
}

// TranslateModule decompiles globals and every defined function,
// filtered by keep (nil keeps all).
func TranslateModule(m *ir.Module, opts Options, keep func(*ir.Function) bool) *cast.File {
	file := &cast.File{}
	name := func(g *ir.Global) string {
		if opts.Name != nil {
			return opts.Name(g)
		}
		return sanitize(g.Nam)
	}
	for _, g := range m.Globals {
		vd := &cast.VarDecl{T: CType(g.Elem), Name: name(g)}
		if g.Init != nil {
			switch c := g.Init.(type) {
			case *ir.ConstInt:
				vd.Init = &cast.IntLit{V: c.V}
			case *ir.ConstFloat:
				vd.Init = &cast.FloatLit{V: c.V}
			}
		}
		file.Vars = append(file.Vars, vd)
	}
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if keep != nil && !keep(f) {
			continue
		}
		file.Funcs = append(file.Funcs, TranslateFunction(f, opts))
	}
	return file
}

type structurizer struct {
	tr   *translator
	f    *ir.Function
	opts Options

	dom  *analysis.DomTree
	pdom *analysis.PostDomTree
	li   *analysis.LoopInfo

	emitted   map[*ir.Block]bool
	gotoTgt   map[*ir.Block]bool
	loopStack []*analysis.Loop
	// pendingLoopBr is the latch branch of the do-while currently being
	// emitted; reaching it ends body emission.
	pendingLoopBr *ir.Instr
	// forIVMemo caches the for-loop decision per header.
	forIVMemo map[*ir.Block]*ir.Instr
	noTopDecl map[string]bool
}

// --- unstructured (naive C backend) emission ---

func (s *structurizer) emitRaw() []cast.Stmt {
	var out []cast.Stmt
	for _, b := range s.f.Blocks {
		out = append(out, &cast.Label{Name: fmtLabel(b)})
		s.gotoTgt[b] = true // the naive backend labels every block
		out = append(out, s.tr.stmtsForBlock(b)...)
		term := b.Terminator()
		if term == nil {
			continue
		}
		switch term.Op {
		case ir.OpRet:
			out = append(out, s.retStmt(term, b))
		case ir.OpBr:
			out = append(out, s.phiCopies(b, term.Blocks[0])...)
			out = append(out, &cast.Goto{Label: fmtLabel(term.Blocks[0])})
		case ir.OpCondBr:
			cond := s.tr.expr(term.Args[0], b, len(b.Instrs)-1)
			thenB := append(s.phiCopies(b, term.Blocks[0]), &cast.Goto{Label: fmtLabel(term.Blocks[0])})
			elseB := append(s.phiCopies(b, term.Blocks[1]), &cast.Goto{Label: fmtLabel(term.Blocks[1])})
			out = append(out, &cast.If{
				Cond: cond,
				Then: &cast.Block{Stmts: thenB},
				Else: &cast.Block{Stmts: elseB},
			})
		}
	}
	return out
}

func (s *structurizer) retStmt(term *ir.Instr, b *ir.Block) cast.Stmt {
	if len(term.Args) == 1 {
		return &cast.Return{X: s.tr.expr(term.Args[0], b, len(b.Instrs)-1)}
	}
	return &cast.Return{}
}

// phiCopies emits assignments realizing the phi moves on edge from->to.
func (s *structurizer) phiCopies(from, to *ir.Block) []cast.Stmt {
	var out []cast.Stmt
	managed := s.forLoopIV(to)
	for _, phi := range to.Phis() {
		if phi == managed {
			continue
		}
		v := phi.PhiIncoming(from)
		if v == nil {
			continue
		}
		if v == ir.Value(phi) {
			continue // self-move
		}
		name := s.tr.name(phi)
		// SSA de-transformation: when the incoming value's emitted
		// assignment already writes the phi's variable (collapsed
		// names), the copy is a no-op.
		if iv, ok := v.(*ir.Instr); ok && s.tr.name(iv) == name && s.tr.emittedStmt[iv] {
			s.tr.declare(name, CType(phi.Type()))
			continue
		}
		s.tr.declare(name, CType(phi.Type()))
		out = append(out, assignTo(name, s.tr.expr(v, from, len(from.Instrs)-1)))
	}
	return out
}

// --- structured emission ---

func (s *structurizer) emitSeq(b, stop *ir.Block) []cast.Stmt {
	var out []cast.Stmt
	for b != nil && b != stop {
		if s.emitted[b] {
			s.gotoTgt[b] = true
			out = append(out, &cast.Goto{Label: fmtLabel(b)})
			return out
		}
		if L := s.li.LoopOf(b); L != nil && L.Header == b && !s.inStack(L) {
			b = s.emitLoop(L, &out)
			continue
		}
		s.emitted[b] = true
		out = append(out, &cast.Label{Name: fmtLabel(b)})
		out = append(out, s.tr.stmtsForBlock(b)...)
		term := b.Terminator()
		if term == nil {
			return out
		}
		switch term.Op {
		case ir.OpRet:
			out = append(out, s.retStmt(term, b))
			return out
		case ir.OpBr:
			t := term.Blocks[0]
			out = append(out, s.phiCopies(b, t)...)
			if s.isBackEdge(b, t) {
				return out
			}
			b = t
		case ir.OpCondBr:
			if term == s.pendingLoopBr {
				// The do-while latch test: body ends here; the loop
				// construct renders the condition.
				out = append(out, s.phiCopies(b, s.loopHeaderOf(term))...)
				return out
			}
			t, f := term.Blocks[0], term.Blocks[1]
			join := s.pdom.IPostDom(b)
			cond := s.tr.expr(term.Args[0], b, len(b.Instrs)-1)

			branch := func(target *ir.Block) []cast.Stmt {
				stmts := s.phiCopies(b, target)
				if target != join && !s.isBackEdge(b, target) {
					stmts = append(stmts, s.emitSeq(target, join)...)
				}
				return stmts
			}
			thenStmts := branch(t)
			elseStmts := branch(f)
			switch {
			case len(thenStmts) == 0 && len(elseStmts) == 0:
				// Both edges rejoin immediately: nothing to emit.
			case len(thenStmts) == 0:
				out = append(out, &cast.If{
					Cond: &cast.Un{Op: "!", X: &cast.Paren{X: cond}},
					Then: &cast.Block{Stmts: elseStmts},
				})
			case len(elseStmts) == 0:
				out = append(out, &cast.If{Cond: cond, Then: &cast.Block{Stmts: thenStmts}})
			default:
				out = append(out, &cast.If{
					Cond: cond,
					Then: &cast.Block{Stmts: thenStmts},
					Else: &cast.Block{Stmts: elseStmts},
				})
			}
			b = join
		}
	}
	return out
}

func (s *structurizer) inStack(L *analysis.Loop) bool {
	for _, x := range s.loopStack {
		if x == L {
			return true
		}
	}
	return false
}

func (s *structurizer) isBackEdge(from, to *ir.Block) bool {
	for _, L := range s.loopStack {
		if L.Header == to && L.Contains(from) {
			return true
		}
	}
	return false
}

func (s *structurizer) loopHeaderOf(latchBr *ir.Instr) *ir.Block {
	for _, t := range latchBr.Blocks {
		for _, L := range s.loopStack {
			if L.Header == t {
				return t
			}
		}
	}
	return latchBr.Blocks[0]
}

// forLoopIV decides (and caches) whether the loop headed by header will
// be emitted as a C for statement, returning its induction phi.
func (s *structurizer) forLoopIV(header *ir.Block) *ir.Instr {
	if !s.opts.ForLoops || s.li == nil {
		return nil
	}
	if iv, ok := s.forIVMemo[header]; ok {
		return iv
	}
	s.forIVMemo[header] = nil
	L := s.li.LoopOf(header)
	if L == nil || L.Header != header {
		return nil
	}
	cl := analysis.AnalyzeCountedLoop(L)
	if cl == nil || cl.Rotated || cl.CondBr.Parent != header {
		return nil
	}
	// Header computations must disappear into the condition.
	for _, in := range header.Instrs[len(header.Phis()):] {
		if in == cl.Cmp || in == cl.CondBr || in.Op == ir.OpDbgValue {
			continue
		}
		if !pureInstr(in) || s.tr.useCount[in] != 1 {
			return nil
		}
	}
	// The step must live in the latch (emitted as the for post).
	if cl.StepInstr.Parent == nil || !L.Contains(cl.StepInstr.Parent) {
		return nil
	}
	s.forIVMemo[header] = cl.IV
	return cl.IV
}

// emitLoop renders loop L and returns the continuation block.
func (s *structurizer) emitLoop(L *analysis.Loop, out *[]cast.Stmt) *ir.Block {
	header := L.Header
	cl := analysis.AnalyzeCountedLoop(L)
	exits := L.ExitBlocks()
	var exit *ir.Block
	if len(exits) == 1 {
		exit = exits[0]
	}

	// C for loop (SPLENDID after de-rotation).
	if iv := s.forLoopIV(header); iv != nil && cl != nil && exit != nil {
		return s.emitForLoop(L, cl, exit, out)
	}

	// do-while: the unique exiting branch sits in the latch.
	if exit != nil {
		exiting := L.ExitingBlocks()
		latch := L.Latch()
		if len(exiting) == 1 && latch != nil && exiting[0] == latch &&
			latch.Terminator().Op == ir.OpCondBr {
			return s.emitDoWhile(L, exit, out)
		}
		// while: the unique exiting branch is the header's.
		if len(exiting) == 1 && exiting[0] == header &&
			header.Terminator().Op == ir.OpCondBr && s.whileEmittable(header) {
			return s.emitWhile(L, exit, out)
		}
	}

	// Fallback: unstructured emission of the loop blocks.
	s.loopStack = append(s.loopStack, L)
	for _, b := range L.BlockList() {
		if s.emitted[b] {
			continue
		}
		s.emitted[b] = true
		s.gotoTgt[b] = true
		*out = append(*out, &cast.Label{Name: fmtLabel(b)})
		*out = append(*out, s.tr.stmtsForBlock(b)...)
		term := b.Terminator()
		switch term.Op {
		case ir.OpRet:
			*out = append(*out, s.retStmt(term, b))
		case ir.OpBr:
			*out = append(*out, s.phiCopies(b, term.Blocks[0])...)
			*out = append(*out, &cast.Goto{Label: fmtLabel(term.Blocks[0])})
			s.gotoTgt[term.Blocks[0]] = true
		case ir.OpCondBr:
			cond := s.tr.expr(term.Args[0], b, len(b.Instrs)-1)
			tB := append(s.phiCopies(b, term.Blocks[0]), &cast.Goto{Label: fmtLabel(term.Blocks[0])})
			fB := append(s.phiCopies(b, term.Blocks[1]), &cast.Goto{Label: fmtLabel(term.Blocks[1])})
			s.gotoTgt[term.Blocks[0]] = true
			s.gotoTgt[term.Blocks[1]] = true
			*out = append(*out, &cast.If{Cond: cond, Then: &cast.Block{Stmts: tB}, Else: &cast.Block{Stmts: fB}})
		}
	}
	s.loopStack = s.loopStack[:len(s.loopStack)-1]
	return exit
}

func (s *structurizer) whileEmittable(header *ir.Block) bool {
	for _, in := range header.Instrs[len(header.Phis()):] {
		if in.IsTerminator() || in.Op == ir.OpDbgValue {
			continue
		}
		if !pureInstr(in) || s.tr.useCount[in] != 1 {
			return false
		}
	}
	return true
}

func (s *structurizer) emitForLoop(L *analysis.Loop, cl *analysis.CountedLoop, exit *ir.Block, out *[]cast.Stmt) *ir.Block {
	header := L.Header
	s.loopStack = append(s.loopStack, L)
	s.emitted[header] = true

	ivName := s.tr.name(cl.IV)
	s.tr.declare(ivName, CType(cl.IV.Type()))
	s.noTopDecl[ivName] = true

	pre := L.Preheader()
	initExpr := s.tr.exprNoFold(cl.Init, pre, 0)
	// Mark the condition chain folded so the body does not re-emit it.
	condExpr := s.condExprFor(cl, header)

	// Post: i++ / i += c / i = i + c.
	var post cast.Stmt
	stepUses := s.tr.useCount[cl.StepInstr]
	if stepUses == 1 { // only the phi
		s.tr.folded[cl.StepInstr] = true
		switch {
		case cl.Step == 1:
			post = &cast.ExprStmt{X: &cast.IncDec{X: &cast.Ident{Name: ivName}, Op: "++", Post: true}}
		case cl.Step == -1:
			post = &cast.ExprStmt{X: &cast.IncDec{X: &cast.Ident{Name: ivName}, Op: "--", Post: true}}
		case cl.Step > 0:
			post = &cast.ExprStmt{X: &cast.Assign{Op: "=", LHS: &cast.Ident{Name: ivName},
				RHS: &cast.Bin{Op: "+", L: &cast.Ident{Name: ivName}, R: &cast.IntLit{V: cl.Step}}}}
		default:
			post = &cast.ExprStmt{X: &cast.Assign{Op: "=", LHS: &cast.Ident{Name: ivName},
				RHS: &cast.Bin{Op: "-", L: &cast.Ident{Name: ivName}, R: &cast.IntLit{V: -cl.Step}}}}
		}
	} else {
		post = &cast.ExprStmt{X: &cast.Assign{Op: "=", LHS: &cast.Ident{Name: ivName},
			RHS: &cast.Ident{Name: s.tr.name(cl.StepInstr)}}}
	}

	var bodyEntry *ir.Block
	for _, succ := range header.Succs() {
		if L.Contains(succ) {
			bodyEntry = succ
		}
	}
	body := s.emitSeq(bodyEntry, header)
	s.loopStack = s.loopStack[:len(s.loopStack)-1]
	exitCopies := s.phiCopies(header, exit)

	forStmt := &cast.For{
		Init: &cast.Decl{T: CType(cl.IV.Type()), Name: ivName, Init: initExpr},
		Cond: condExpr,
		Post: post,
		Body: &cast.Block{Stmts: body},
	}
	if pi := s.opts.PragmaFor[header]; pi != nil {
		// Reduction clauses: pair the recorded operators with the loop's
		// accumulator phis (every non-IV phi of a reduction loop is one).
		var reds []cast.Reduction
		if len(pi.ReductionOps) > 0 {
			ri := 0
			for _, phi := range header.Phis() {
				if phi == cl.IV || ri >= len(pi.ReductionOps) {
					continue
				}
				reds = append(reds, cast.Reduction{Op: pi.ReductionOps[ri], Var: s.tr.name(phi)})
				ri++
			}
		}
		if pi.Combined {
			*out = append(*out, &cast.OmpParallelFor{
				Schedule: pi.Schedule, Chunk: pi.Chunk, Private: pi.Private,
				Reductions: reds, Loop: forStmt,
			})
		} else {
			*out = append(*out, &cast.OmpParallel{Body: &cast.Block{Stmts: []cast.Stmt{
				&cast.OmpFor{Schedule: pi.Schedule, Chunk: pi.Chunk, NoWait: pi.NoWait,
					Private: pi.Private, Reductions: reds, Loop: forStmt},
			}}})
		}
	} else {
		*out = append(*out, forStmt)
	}
	*out = append(*out, exitCopies...)
	return exit
}

// condExprFor renders the loop-continue condition, folding the compare
// chain in the header.
func (s *structurizer) condExprFor(cl *analysis.CountedLoop, header *ir.Block) cast.Expr {
	s.tr.folded[cl.Cmp] = true
	ivExpr := cast.Expr(&cast.Ident{Name: s.tr.name(cl.IV)})
	boundExpr := s.tr.exprForceFold(cl.Bound, header, len(header.Instrs)-1)
	return &cast.Bin{Op: predToC[cl.ContinuePred], L: ivExpr, R: boundExpr}
}

func (s *structurizer) emitDoWhile(L *analysis.Loop, exit *ir.Block, out *[]cast.Stmt) *ir.Block {
	latch := L.Latch()
	term := latch.Terminator()
	savedPending := s.pendingLoopBr
	s.pendingLoopBr = term
	s.loopStack = append(s.loopStack, L)

	body := s.emitSeq(L.Header, nil)

	s.loopStack = s.loopStack[:len(s.loopStack)-1]
	s.pendingLoopBr = savedPending

	cond := s.tr.expr(term.Args[0], latch, len(latch.Instrs)-1)
	if !L.Contains(term.Blocks[0]) {
		cond = &cast.Un{Op: "!", X: &cast.Paren{X: cond}}
	}
	*out = append(*out, &cast.DoWhile{Body: &cast.Block{Stmts: body}, Cond: cond})
	*out = append(*out, s.phiCopies(latch, exit)...)
	return exit
}

func (s *structurizer) emitWhile(L *analysis.Loop, exit *ir.Block, out *[]cast.Stmt) *ir.Block {
	header := L.Header
	term := header.Terminator()
	s.emitted[header] = true
	s.loopStack = append(s.loopStack, L)

	cond := s.tr.exprForceFold(term.Args[0], header, len(header.Instrs)-1)
	if !L.Contains(term.Blocks[0]) {
		cond = &cast.Un{Op: "!", X: &cast.Paren{X: cond}}
	}
	var bodyEntry *ir.Block
	for _, succ := range header.Succs() {
		if L.Contains(succ) {
			bodyEntry = succ
		}
	}
	body := s.emitSeq(bodyEntry, header)
	s.loopStack = s.loopStack[:len(s.loopStack)-1]

	// While-loop phis appear as variables assigned before the loop (on
	// the entry edge, emitted by the caller) and at the latch (inside
	// body via phiCopies on the back edge).
	*out = append(*out, &cast.While{Cond: cond, Body: &cast.Block{Stmts: body}})
	*out = append(*out, s.phiCopies(header, exit)...)
	return exit
}

// stripUnusedLabels removes Label statements that no goto targets.
func stripUnusedLabels(stmts []cast.Stmt, used map[*ir.Block]bool) []cast.Stmt {
	names := map[string]bool{}
	for b := range used {
		if used[b] {
			names[fmtLabel(b)] = true
		}
	}
	var walk func([]cast.Stmt) []cast.Stmt
	walk = func(in []cast.Stmt) []cast.Stmt {
		var out []cast.Stmt
		for _, st := range in {
			switch x := st.(type) {
			case *cast.Label:
				if names[x.Name] {
					out = append(out, x)
				}
			case *cast.If:
				x.Then = &cast.Block{Stmts: walk(x.Then.Stmts)}
				if eb, ok := x.Else.(*cast.Block); ok {
					x.Else = &cast.Block{Stmts: walk(eb.Stmts)}
				}
				out = append(out, x)
			case *cast.For:
				x.Body = &cast.Block{Stmts: walk(x.Body.Stmts)}
				out = append(out, x)
			case *cast.While:
				x.Body = &cast.Block{Stmts: walk(x.Body.Stmts)}
				out = append(out, x)
			case *cast.DoWhile:
				x.Body = &cast.Block{Stmts: walk(x.Body.Stmts)}
				out = append(out, x)
			case *cast.Block:
				out = append(out, &cast.Block{Stmts: walk(x.Stmts)})
			case *cast.OmpParallel:
				x.Body = &cast.Block{Stmts: walk(x.Body.Stmts)}
				out = append(out, x)
			case *cast.OmpFor:
				x.Loop.Body = &cast.Block{Stmts: walk(x.Loop.Body.Stmts)}
				out = append(out, x)
			case *cast.OmpParallelFor:
				x.Loop.Body = &cast.Block{Stmts: walk(x.Loop.Body.Stmts)}
				out = append(out, x)
			default:
				out = append(out, st)
			}
		}
		return out
	}
	return walk(stmts)
}
