// Package rellic reimplements the output style of Rellic, the
// state-of-the-art LLVM-to-C decompiler the paper uses as its primary
// baseline (Table 1, Figures 1 and 7). Rellic structures control flow —
// rotated loops come out as do-while statements behind explicit guard
// checks — but performs no parallel-runtime elimination: __kmpc_* calls
// and parallelization setup instructions appear verbatim in the output,
// making it unportable, and variables carry register-derived val<N>
// names.
package rellic

import (
	"repro/internal/cast"
	"repro/internal/decomp"
	"repro/internal/ir"
)

// Decompile translates the module in Rellic style. Outlined microtasks
// are emitted as ordinary functions, exactly as Rellic shows them.
func Decompile(m *ir.Module) *cast.File {
	opts := decomp.Options{
		Structured: true,
		ForLoops:   false, // rotated loops stay do-while
		Fold:       false,
		CastHappy:  true, // "(long)val8 <= (long)val10" per Figure 1
		PtrArith:   true, // addresses flow through pointer temporaries
		Name:       decomp.SeqNamer("val"),
	}
	return decomp.TranslateModule(m, opts, nil)
}

// DecompileFunction translates one function in Rellic style.
func DecompileFunction(f *ir.Function) *cast.FuncDecl {
	opts := decomp.Options{
		Structured: true,
		ForLoops:   false,
		Fold:       false,
		CastHappy:  true,
		PtrArith:   true,
		Name:       decomp.SeqNamer("val"),
	}
	return decomp.TranslateFunction(f, opts)
}
