package rellic

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cfront"
	"repro/internal/parallel"
	"repro/internal/passes"
	"repro/internal/splendid"
)

const src = `
#define N 100
double A[N];
double B[N];
void kernel() {
  for (long i = 1; i < N - 1; i++) {
    B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
  }
}
`

func TestRellicStyle(t *testing.T) {
	m, err := cfront.CompileSource(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	parallel.Parallelize(m, parallel.Options{})
	c := cast.Print(Decompile(m))

	// Unportable: runtime calls survive in the output (the paper's core
	// criticism of the baseline).
	for _, want := range []string{"__kmpc_fork_call", "__kmpc_for_static_init_8", "__kmpc_for_static_fini"} {
		if !strings.Contains(c, want) {
			t.Errorf("runtime call %q missing:\n%s", want, c)
		}
	}
	// Rotated loops come out as do-while behind a guard if.
	if !strings.Contains(c, "do {") {
		t.Errorf("no do-while:\n%s", c)
	}
	// Register-derived names and cast-heavy expressions.
	if !strings.Contains(c, "val") {
		t.Errorf("no valN names:\n%s", c)
	}
	if !strings.Contains(c, "(long)") {
		t.Errorf("no redundant casts:\n%s", c)
	}
	// No OpenMP pragmas: Rellic does not translate parallelism.
	if strings.Contains(c, "#pragma") {
		t.Errorf("baseline produced pragmas:\n%s", c)
	}
}

// The deliberate contrast of the paper's Figure 1: same IR, SPLENDID
// output is pragma-based and for-looped while Rellic's is not.
func TestContrastWithSplendid(t *testing.T) {
	m, err := cfront.CompileSource(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	parallel.Parallelize(m, parallel.Options{})
	rellicC := cast.Print(Decompile(m))
	res, err := splendid.Decompile(m, splendid.Full())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.C, "__kmpc") || !strings.Contains(res.C, "#pragma omp") {
		t.Errorf("SPLENDID output not portable:\n%s", res.C)
	}
	if len(rellicC) < 2*len(res.C) {
		t.Errorf("Rellic output (%d bytes) not substantially longer than SPLENDID (%d bytes)",
			len(rellicC), len(res.C))
	}
}

func TestDecompileFunction(t *testing.T) {
	m, err := cfront.CompileSource(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	fd := DecompileFunction(m.FuncByName("kernel"))
	if fd.Name != "kernel" {
		t.Errorf("name = %q", fd.Name)
	}
	c := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{fd}})
	if !strings.Contains(c, "val") {
		t.Errorf("no valN naming:\n%s", c)
	}
}
