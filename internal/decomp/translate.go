// Package decomp is the shared decompilation engine: it translates IR
// values into C expressions and structures CFGs into C statements. All
// decompilers in the reproduction are built on it — the naive goto-based
// C backend (the substrate the paper says SPLENDID builds upon), the
// Rellic- and Ghidra-style baselines, and SPLENDID itself — differing in
// the knobs they set: expression folding, loop-construct selection,
// variable naming, and redundant-cast insertion.
package decomp

import (
	"fmt"
	"strings"

	"repro/internal/cast"
	"repro/internal/ir"
)

// Namer chooses the C variable name for an IR value.
type Namer func(v ir.Value) string

// Options configures translation and structuring.
type Options struct {
	// Fold collapses single-use pure instructions into their consumer,
	// producing natural compound expressions instead of one assignment
	// per instruction.
	Fold bool
	// ForLoops emits canonical counted loops (already de-rotated in IR)
	// as C for statements. Without it counted loops become do-while or
	// while constructs.
	ForLoops bool
	// Structured enables if/else and loop reconstruction; off yields the
	// goto-per-branch style of the naive C backend.
	Structured bool
	// CastHappy wraps operands in redundant casts (Ghidra house style).
	CastHappy bool
	// PtrArith renders addresses as pointer arithmetic (*(A + i)) instead
	// of array subscripts (A[i]) — the Rellic house style shown in the
	// paper's Figure 1.
	PtrArith bool
	// Name picks variable names; nil uses raw IR names.
	Name Namer
	// PragmaFor wraps the for loop whose IR header is the key in the
	// OpenMP constructs SPLENDID's Pragma Generator selected.
	PragmaFor map[*ir.Block]*PragmaInfo
	// Info, when non-nil, receives emission statistics.
	Info *EmitInfo
}

// PragmaInfo describes the OpenMP annotation for one restored loop.
type PragmaInfo struct {
	// Seq identifies the parallel region this pragma came from; the
	// decompiler uses it to re-associate pragmas with marker-named loop
	// headers across CFG rewrites.
	Seq      int
	Schedule string
	Chunk    int
	NoWait   bool
	Private  []string
	// ReductionOps lists the combine operators of the loop's reductions,
	// in microtask order; the emitter pairs them with the loop's
	// accumulator phis to produce reduction(op: var) clauses.
	ReductionOps []string
	// Combined emits "#pragma omp parallel for"; otherwise a parallel
	// region block wraps an omp for.
	Combined bool
}

// EmitInfo reports what one function's emission declared.
type EmitInfo struct {
	// DeclaredVars lists every C variable name introduced (locals,
	// for-loop induction variables, and parameters).
	DeclaredVars []string
}

// CType maps an IR type to the C type used in decompiled output.
func CType(t ir.Type) cast.Type {
	switch tt := t.(type) {
	case *ir.BasicType:
		switch tt.Kind {
		case ir.KindVoid:
			return cast.VoidT
		case ir.KindF32, ir.KindF64:
			return cast.DoubleT
		case ir.KindI1:
			return cast.IntT
		case ir.KindI8:
			return cast.CharT
		default:
			return cast.LongT
		}
	case *ir.PtrType:
		return &cast.PtrT{To: CType(tt.Elem)}
	case *ir.ArrayType:
		return &cast.ArrT{N: tt.Len, Elem: CType(tt.Elem)}
	}
	return cast.LongT
}

// translator converts one function.
type translator struct {
	f    *ir.Function
	opts Options

	// useCount counts non-debug uses of each instruction.
	useCount map[*ir.Instr]int
	// folded marks instructions absorbed into consumer expressions.
	folded map[*ir.Instr]bool
	// pos is each instruction's index within its block.
	pos map[*ir.Instr]int
	// barriers lists, per block, positions of memory-clobbering instrs.
	barriers map[*ir.Block][]int

	// decls accumulates local variable declarations (name -> C type),
	// in first-seen order.
	declOrder []string
	declType  map[string]cast.Type
	// emittedStmt marks instructions whose value was materialized as an
	// assignment statement (used to elide redundant phi copies).
	emittedStmt map[*ir.Instr]bool
}

func newTranslator(f *ir.Function, opts Options) *translator {
	tr := &translator{
		f:           f,
		opts:        opts,
		useCount:    map[*ir.Instr]int{},
		folded:      map[*ir.Instr]bool{},
		pos:         map[*ir.Instr]int{},
		barriers:    map[*ir.Block][]int{},
		declType:    map[string]cast.Type{},
		emittedStmt: map[*ir.Instr]bool{},
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			tr.pos[in] = i
			// Memory-clobbering points: stores and impure calls. Pure
			// math calls read nothing through memory, so loads may fold
			// across them.
			if in.Op == ir.OpStore || (in.Op == ir.OpCall && !isPureCall(in)) {
				tr.barriers[b] = append(tr.barriers[b], i)
			}
			if in.Op == ir.OpDbgValue {
				continue
			}
			for _, a := range in.Args {
				if ia, ok := a.(*ir.Instr); ok {
					tr.useCount[ia]++
				}
			}
		}
	}
	return tr
}

func (tr *translator) name(v ir.Value) string {
	if tr.opts.Name != nil {
		return tr.opts.Name(v)
	}
	switch x := v.(type) {
	case *ir.Instr:
		return sanitize(x.Nam)
	case *ir.Param:
		return sanitize(x.Nam)
	case *ir.Global:
		return sanitize(x.Nam)
	}
	return "v"
}

func sanitize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '.' || c == '-':
			b.WriteByte('_')
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// declare records that name needs a declaration of type t.
func (tr *translator) declare(name string, t cast.Type) {
	if _, ok := tr.declType[name]; ok {
		return
	}
	tr.declType[name] = t
	tr.declOrder = append(tr.declOrder, name)
}

// pure reports whether in can be re-evaluated freely.
func pureInstr(in *ir.Instr) bool {
	if in.Op.IsBinary() || in.Op.IsCast() {
		return true
	}
	switch in.Op {
	case ir.OpGEP, ir.OpICmp, ir.OpFCmp, ir.OpSelect, ir.OpFNeg:
		return true
	}
	return false
}

// pureCallNames are side-effect-free math externals whose single-use
// calls fold into consumer expressions (exp(C[i]) prints inline, as in
// the paper's Figure 2 output).
var pureCallNames = map[string]bool{
	"exp": true, "log": true, "sqrt": true, "fabs": true, "pow": true,
	"sin": true, "cos": true, "floor": true, "ceil": true,
}

func isPureCall(in *ir.Instr) bool {
	if in.Op != ir.OpCall {
		return false
	}
	f, ok := in.Callee.(*ir.Function)
	return ok && pureCallNames[f.Nam]
}

// canFold decides whether def may be absorbed into its (single) use at
// position usePos in the same block. Loads may not move across stores or
// calls; pure instructions move freely within the block.
func (tr *translator) canFold(def *ir.Instr, useBlock *ir.Block, usePos int) bool {
	if !tr.opts.Fold || tr.useCount[def] != 1 || def.Parent != useBlock {
		return false
	}
	switch {
	case pureInstr(def):
		return true
	case def.Op == ir.OpLoad || isPureCall(def):
		// Loads and calls may not move across stores or other calls.
		for _, bi := range tr.barriers[useBlock] {
			if bi > tr.pos[def] && bi < usePos {
				return false
			}
		}
		return true
	}
	return false
}

// expr renders v as a C expression usable at (block, pos).
func (tr *translator) expr(v ir.Value, blk *ir.Block, pos int) cast.Expr {
	switch x := v.(type) {
	case *ir.ConstInt:
		return &cast.IntLit{V: x.V}
	case *ir.ConstFloat:
		return &cast.FloatLit{V: x.V}
	case *ir.ConstNull:
		return &cast.IntLit{V: 0}
	case *ir.ConstUndef:
		return &cast.IntLit{V: 0}
	case *ir.Global:
		return &cast.Ident{Name: tr.name(x)}
	case *ir.Param:
		return tr.maybeCast(&cast.Ident{Name: tr.name(x)}, x.Type())
	case *ir.Function:
		return &cast.Ident{Name: sanitize(x.Nam)}
	case *ir.Instr:
		if x.Op == ir.OpAlloca {
			// The alloca's SSA value is the address of the local.
			tr.declare(tr.name(x), CType(x.AllocaElem))
			return &cast.Un{Op: "&", X: &cast.Ident{Name: tr.name(x)}}
		}
		if tr.canFold(x, blk, pos) {
			tr.folded[x] = true
			return tr.instrExpr(x, blk, pos)
		}
		return tr.maybeCast(&cast.Ident{Name: tr.name(x)}, x.Type())
	}
	return &cast.IntLit{V: 0}
}

// exprNoFold renders v without absorbing its defining instruction, for
// positions (like for-loop init clauses) where the definition has
// already been emitted as a statement.
func (tr *translator) exprNoFold(v ir.Value, blk *ir.Block, pos int) cast.Expr {
	saved := tr.opts.Fold
	tr.opts.Fold = false
	e := tr.expr(v, blk, pos)
	tr.opts.Fold = saved
	return e
}

// exprForceFold renders v with folding enabled regardless of options —
// used for loop conditions, whose defining chain is never emitted as
// statements (the loop construct owns it).
func (tr *translator) exprForceFold(v ir.Value, blk *ir.Block, pos int) cast.Expr {
	saved := tr.opts.Fold
	tr.opts.Fold = true
	e := tr.expr(v, blk, pos)
	tr.opts.Fold = saved
	return e
}

// maybeCast wraps e in a redundant cast in CastHappy mode.
func (tr *translator) maybeCast(e cast.Expr, t ir.Type) cast.Expr {
	if !tr.opts.CastHappy {
		return e
	}
	switch {
	case ir.IsIntegerType(t):
		return &cast.CastE{T: cast.LongT, X: e}
	case ir.IsFloatType(t):
		return &cast.CastE{T: cast.DoubleT, X: e}
	}
	return e
}

var opToC = map[ir.Op]string{
	ir.OpAdd: "+", ir.OpSub: "-", ir.OpMul: "*", ir.OpSDiv: "/", ir.OpSRem: "%",
	ir.OpAnd: "&", ir.OpOr: "|", ir.OpXor: "^", ir.OpShl: "<<", ir.OpAShr: ">>",
	ir.OpFAdd: "+", ir.OpFSub: "-", ir.OpFMul: "*", ir.OpFDiv: "/",
}

var predToC = map[ir.CmpPred]string{
	ir.CmpEQ: "==", ir.CmpNE: "!=", ir.CmpSLT: "<", ir.CmpSLE: "<=",
	ir.CmpSGT: ">", ir.CmpSGE: ">=",
}

// instrExpr renders the computation of in as an expression.
func (tr *translator) instrExpr(in *ir.Instr, blk *ir.Block, pos int) cast.Expr {
	switch {
	case in.Op.IsBinary():
		return &cast.Bin{
			Op: opToC[in.Op],
			L:  tr.expr(in.Args[0], blk, pos),
			R:  tr.expr(in.Args[1], blk, pos),
		}
	case in.Op == ir.OpICmp || in.Op == ir.OpFCmp:
		return &cast.Bin{
			Op: predToC[in.Pred],
			L:  tr.expr(in.Args[0], blk, pos),
			R:  tr.expr(in.Args[1], blk, pos),
		}
	case in.Op == ir.OpFNeg:
		return &cast.Un{Op: "-", X: tr.expr(in.Args[0], blk, pos)}
	case in.Op == ir.OpSelect:
		return &cast.Ternary{
			C: tr.expr(in.Args[0], blk, pos),
			T: tr.expr(in.Args[1], blk, pos),
			F: tr.expr(in.Args[2], blk, pos),
		}
	case in.Op.IsCast():
		inner := tr.expr(in.Args[0], blk, pos)
		if tr.opts.Fold && !tr.opts.CastHappy && sameCScalar(in.Type(), in.Args[0].Type()) {
			// i64<->i64-ish casts disappear in the folded style.
			return inner
		}
		return &cast.CastE{T: CType(in.Type()), X: inner}
	case in.Op == ir.OpLoad:
		return tr.pointeeExpr(in.Args[0], blk, pos)
	case in.Op == ir.OpGEP:
		return &cast.Un{Op: "&", X: tr.gepExpr(in, blk, pos)}
	case in.Op == ir.OpCall:
		return tr.callExpr(in, blk, pos)
	case in.Op == ir.OpPhi:
		// A phi read outside its managed construct reads its variable.
		return &cast.Ident{Name: tr.name(in)}
	}
	return &cast.Ident{Name: tr.name(in)}
}

func sameCScalar(a, b ir.Type) bool {
	return ir.IsIntegerType(a) && ir.IsIntegerType(b) ||
		ir.IsFloatType(a) && ir.IsFloatType(b)
}

// pointeeExpr renders *ptr naturally: subscripted array accesses where
// the pointer is a gep, plain dereference otherwise.
func (tr *translator) pointeeExpr(ptr ir.Value, blk *ir.Block, pos int) cast.Expr {
	if g, ok := ptr.(*ir.Instr); ok && g.Op == ir.OpGEP && (tr.folded[g] || tr.canFold(g, blk, pos)) {
		tr.folded[g] = true
		return tr.gepExpr(g, blk, pos)
	}
	switch p := ptr.(type) {
	case *ir.Global:
		// *(&g) == g for scalar globals.
		if _, isArr := p.Elem.(*ir.ArrayType); !isArr {
			return &cast.Ident{Name: tr.name(p)}
		}
	case *ir.Instr:
		if p.Op == ir.OpAlloca {
			if _, isArr := p.AllocaElem.(*ir.ArrayType); !isArr {
				return &cast.Ident{Name: tr.name(p)}
			}
		}
	}
	return &cast.Un{Op: "*", X: tr.expr(ptr, blk, pos)}
}

// gepExpr renders a gep as a C lvalue: A[i][j] for array bases,
// p[i] for flat pointers; in PtrArith mode, *(base + linearized-offset).
func (tr *translator) gepExpr(g *ir.Instr, blk *ir.Block, pos int) cast.Expr {
	base := g.Args[0]
	idxs := g.Args[1:]
	if tr.opts.PtrArith {
		// Linearize: *( (T*)base + i0*stride0 + i1*stride1 + ... ).
		bt := ir.ElemOf(base.Type())
		e := cast.Expr(&cast.CastE{T: &cast.PtrT{To: cast.DoubleT}, X: tr.baseExpr(base, blk, pos)})
		t := base.Type()
		for _, idx := range idxs {
			stride := 1
			if et := ir.ElemOf(t); et != nil {
				stride = ir.SizeOfElems(et)
				if a, ok := et.(*ir.ArrayType); ok {
					t = ir.Ptr(a.Elem)
					stride = ir.SizeOfElems(et)
					_ = a
				}
			}
			var term cast.Expr = tr.expr(idx, blk, pos)
			if stride != 1 {
				term = &cast.Bin{Op: "*", L: term, R: &cast.IntLit{V: int64(stride)}}
			}
			e = &cast.Bin{Op: "+", L: e, R: term}
		}
		_ = bt
		return &cast.Un{Op: "*", X: &cast.Paren{X: e}}
	}
	var e cast.Expr
	// Array base object (global or alloca of array type, or pointer to
	// array): first index 0 selects the object, remaining subscript.
	baseIsArray := false
	if et := ir.ElemOf(base.Type()); et != nil {
		_, baseIsArray = et.(*ir.ArrayType)
	}
	if c, ok := idxs[0].(*ir.ConstInt); ok && c.V == 0 && baseIsArray && len(idxs) > 1 {
		// Chained geps merge into one subscript chain: B[k][j] rather
		// than (&B[k])[j].
		if bg, ok := base.(*ir.Instr); ok && bg.Op == ir.OpGEP && (tr.folded[bg] || tr.canFold(bg, blk, pos)) {
			tr.folded[bg] = true
			e = tr.gepExpr(bg, blk, pos)
		} else {
			e = tr.baseExpr(base, blk, pos)
		}
		for _, idx := range idxs[1:] {
			e = &cast.Index{Base: e, Idx: tr.expr(idx, blk, pos)}
		}
		return e
	}
	// Flat pointer arithmetic: p[i] (or p[i][j] through array pointee).
	e = &cast.Index{Base: tr.baseExpr(base, blk, pos), Idx: tr.expr(idxs[0], blk, pos)}
	for _, idx := range idxs[1:] {
		e = &cast.Index{Base: e, Idx: tr.expr(idx, blk, pos)}
	}
	return e
}

// baseExpr renders the base pointer of an access without folding casts.
func (tr *translator) baseExpr(base ir.Value, blk *ir.Block, pos int) cast.Expr {
	switch b := base.(type) {
	case *ir.Global:
		return &cast.Ident{Name: tr.name(b)}
	case *ir.Param:
		return &cast.Ident{Name: tr.name(b)}
	case *ir.Instr:
		if b.Op == ir.OpBitcast {
			// A materialized cast (e.g. data = (double*)malloc(...)) keeps
			// its variable name in accesses; only un-materialized casts
			// are walked through.
			if tr.emittedStmt[b] || tr.useCount[b] > 1 {
				return &cast.Ident{Name: tr.name(b)}
			}
			return tr.baseExpr(b.Args[0], blk, pos)
		}
		if b.Op == ir.OpGEP && (tr.folded[b] || tr.canFold(b, blk, pos)) {
			tr.folded[b] = true
			return &cast.Un{Op: "&", X: tr.gepExpr(b, blk, pos)}
		}
		return &cast.Ident{Name: tr.name(b)}
	}
	return tr.expr(base, blk, pos)
}

func (tr *translator) callExpr(in *ir.Instr, blk *ir.Block, pos int) cast.Expr {
	name := "indirect"
	if f, ok := in.Callee.(*ir.Function); ok {
		name = f.Nam
	}
	call := &cast.Call{Name: sanitize(name)}
	// A microtask passed to a fork call appears by name, unsanitized
	// enough to show it is a function pointer.
	for _, a := range in.Args {
		if f, ok := a.(*ir.Function); ok {
			call.Args = append(call.Args, &cast.Un{Op: "&", X: &cast.Ident{Name: sanitize(f.Nam)}})
			continue
		}
		call.Args = append(call.Args, tr.expr(a, blk, pos))
	}
	return call
}

// stmtsForBlock renders the non-terminator, non-phi instructions of blk.
func (tr *translator) stmtsForBlock(blk *ir.Block) []cast.Stmt {
	var out []cast.Stmt
	for i, in := range blk.Instrs {
		if in.Op == ir.OpPhi || in.Op == ir.OpDbgValue || in.IsTerminator() {
			continue
		}
		if tr.folded[in] {
			continue
		}
		switch in.Op {
		case ir.OpStore:
			lhs := tr.pointeeExpr(in.Args[1], blk, i)
			rhs := tr.expr(in.Args[0], blk, i)
			out = append(out, &cast.ExprStmt{X: &cast.Assign{Op: "=", LHS: lhs, RHS: rhs}})
		case ir.OpAlloca:
			// Becomes a local declaration; address-of uses render as &name.
			tr.declare(tr.name(in), CType(in.AllocaElem))
		case ir.OpCall:
			if in.HasResult() && tr.useCount[in] > 0 {
				if tr.opts.Fold && tr.useCount[in] == 1 && isPureCall(in) &&
					tr.willFoldLater(in, blk, i) {
					continue
				}
				name := tr.name(in)
				tr.declare(name, CType(in.Type()))
				tr.emittedStmt[in] = true
				out = append(out, &cast.ExprStmt{X: &cast.Assign{
					Op: "=", LHS: &cast.Ident{Name: name}, RHS: tr.callExpr(in, blk, i),
				}})
			} else {
				out = append(out, &cast.ExprStmt{X: tr.callExpr(in, blk, i)})
			}
		default:
			if !in.HasResult() {
				continue
			}
			if tr.opts.Fold && tr.useCount[in] == 1 {
				// Deferred: consumer decides; skip emission only if it
				// will in fact fold (same block, barrier-safe).
				if tr.willFoldLater(in, blk, i) {
					continue
				}
			}
			if tr.useCount[in] == 0 && pureInstr(in) {
				continue // dead computation: drop
			}
			name := tr.name(in)
			tr.declare(name, CType(in.Type()))
			tr.emittedStmt[in] = true
			out = append(out, &cast.ExprStmt{X: &cast.Assign{
				Op: "=", LHS: &cast.Ident{Name: name}, RHS: tr.instrExpr(in, blk, i),
			}})
		}
	}
	return out
}

// willFoldLater predicts whether in's single use will fold it. Folding
// is transitive — a pure user that itself folds materializes at ITS
// consumer — so the barrier check must run against the position where
// the expression tree is finally emitted.
func (tr *translator) willFoldLater(in *ir.Instr, blk *ir.Block, pos int) bool {
	user := tr.singleUser(in)
	if user == nil {
		return false
	}
	// A value consumed only by a successor phi on this block's edge is
	// materialized by the phi copy at the end of this block.
	if user.Op == ir.OpPhi && user.PhiIncoming(blk) == ir.Value(in) {
		return tr.canFold(in, blk, len(blk.Instrs)-1)
	}
	if user.Parent != blk {
		return false
	}
	final := tr.materializationPos(user, blk)
	if final < 0 {
		return false
	}
	return tr.canFold(in, blk, final)
}

// materializationPos follows the single-use fold chain from user to the
// statement position where the containing expression is emitted, or -1
// when the chain leaves the block.
func (tr *translator) materializationPos(user *ir.Instr, blk *ir.Block) int {
	for i := 0; i < 64; i++ {
		if user.Parent != blk {
			return -1
		}
		// A user that will itself fold defers to its own consumer.
		if (pureInstr(user) || isPureCall(user)) && tr.useCount[user] == 1 && tr.opts.Fold {
			next := tr.singleUser(user)
			if next != nil && next.Parent == blk {
				user = next
				continue
			}
		}
		return tr.pos[user]
	}
	return -1
}

func (tr *translator) singleUser(in *ir.Instr) *ir.Instr {
	var user *ir.Instr
	for _, b := range tr.f.Blocks {
		for _, u := range b.Instrs {
			if u.Op == ir.OpDbgValue {
				continue
			}
			for _, a := range u.Args {
				if a == ir.Value(in) {
					if user != nil {
						return nil
					}
					user = u
				}
			}
		}
	}
	return user
}

// assignTo emits "name = expr;".
func assignTo(name string, rhs cast.Expr) cast.Stmt {
	return &cast.ExprStmt{X: &cast.Assign{Op: "=", LHS: &cast.Ident{Name: name}, RHS: rhs}}
}

func fmtLabel(b *ir.Block) string { return sanitize(b.Nam) }

var _ = fmt.Sprintf
