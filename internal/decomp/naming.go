package decomp

import (
	"fmt"

	"repro/internal/ir"
)

// IRNamer names values after their IR names (the C backend substrate
// style, prefixed to look register-derived).
func IRNamer(prefix string) Namer {
	memo := map[ir.Value]string{}
	return func(v ir.Value) string {
		if n, ok := memo[v]; ok {
			return n
		}
		var n string
		switch x := v.(type) {
		case *ir.Global:
			n = sanitize(x.Nam) // globals keep their symbol names
		case *ir.Instr:
			n = prefix + sanitize(x.Nam)
		case *ir.Param:
			n = prefix + sanitize(x.Nam)
		default:
			n = prefix + "tmp"
		}
		memo[v] = n
		return n
	}
}

// SeqNamer numbers values in discovery order with a fixed stem:
// val1, val2, ... (the Rellic house style).
func SeqNamer(stem string) Namer {
	memo := map[ir.Value]string{}
	n := 0
	return func(v ir.Value) string {
		if g, ok := v.(*ir.Global); ok {
			return sanitize(g.Nam)
		}
		if name, ok := memo[v]; ok {
			return name
		}
		n++
		name := fmt.Sprintf("%s%d", stem, n)
		memo[v] = name
		return name
	}
}

// GhidraNamer mimics Ghidra's decompiler naming: parameters become
// param_N, values become uVarN or dVarN by type, and stack slots become
// local_<hex>. Global data keeps its symbol-table name — debug
// information is stripped from the evaluated binaries, but data symbols
// survive in the ELF symtab, and Ghidra displays them.
func GhidraNamer() Namer {
	memo := map[ir.Value]string{}
	vars, locals, params := 0, 0, 0
	return func(v ir.Value) string {
		if g, ok := v.(*ir.Global); ok {
			return sanitize(g.Nam)
		}
		if name, ok := memo[v]; ok {
			return name
		}
		var name string
		switch x := v.(type) {
		case *ir.Param:
			params++
			name = fmt.Sprintf("param_%d", params)
		case *ir.Instr:
			if x.Op == ir.OpAlloca {
				locals++
				name = fmt.Sprintf("local_%x", 0x10+locals*8)
			} else if ir.IsFloatType(x.Type()) {
				vars++
				name = fmt.Sprintf("dVar%d", vars)
			} else {
				vars++
				name = fmt.Sprintf("uVar%d", vars)
			}
		default:
			vars++
			name = fmt.Sprintf("uVar%d", vars)
		}
		memo[v] = name
		return name
	}
}

// SourceNamer resolves names through a SPLENDID variable map (IR value ->
// source variable), falling back to the raw IR name. Values mapped to the
// same source variable share one C variable.
func SourceNamer(varMap map[ir.Value]string) Namer {
	memo := map[ir.Value]string{}
	return func(v ir.Value) string {
		if n, ok := memo[v]; ok {
			return n
		}
		var n string
		if src, ok := varMap[v]; ok && src != "" {
			n = sanitize(src)
		} else {
			switch x := v.(type) {
			case *ir.Global:
				n = sanitize(x.Nam)
			case *ir.Instr:
				n = sanitize(x.Nam)
			case *ir.Param:
				n = sanitize(x.Nam)
			default:
				n = "tmp"
			}
		}
		memo[v] = n
		return n
	}
}
