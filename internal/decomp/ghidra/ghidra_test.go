package ghidra

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cfront"
	"repro/internal/ir"
	"repro/internal/parallel"
	"repro/internal/passes"
)

const src = `
#define N 50
double A[N];
void kernel(long x) {
  for (long i = 0; i < N; i++) {
    A[i] = x * 2.0;
  }
}
`

func TestStripRemovesDebugInfo(t *testing.T) {
	m, err := cfront.CompileSource(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	stripped := Strip(m)
	stripped.Funcs[0].Instrs(func(in *ir.Instr) {})
	for _, f := range stripped.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpDbgValue {
				t.Errorf("dbg.value survived stripping: %s", in)
			}
		})
	}
	// The original module is untouched.
	found := false
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpDbgValue {
				found = true
			}
		})
	}
	if !found {
		t.Error("Strip mutated its input")
	}
}

func TestGhidraStyle(t *testing.T) {
	m, err := cfront.CompileSource(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	passes.Optimize(m)
	parallel.Parallelize(m, parallel.Options{})
	c := cast.Print(Decompile(m))

	// Stripped debug info: synthetic names for params and values; data
	// keeps its symtab name.
	for _, want := range []string{"param_1", "uVar", "double A["} {
		if !strings.Contains(c, want) {
			t.Errorf("missing Ghidra-style element %q:\n%s", want, c)
		}
	}
	// Local source variable names are gone (only the symtab survives).
	if strings.Contains(c, "long i;") || strings.Contains(c, " x;") {
		t.Errorf("local variable names survived stripping:\n%s", c)
	}
	// Runtime calls survive (function symbols come from imports).
	if !strings.Contains(c, "__kmpc_fork_call") {
		t.Errorf("runtime call missing:\n%s", c)
	}
	// Cast-heavy house style.
	if !strings.Contains(c, "(long)") && !strings.Contains(c, "(double)") {
		t.Errorf("no redundant casts:\n%s", c)
	}
}
