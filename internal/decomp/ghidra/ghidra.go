// Package ghidra reimplements the output style of the Ghidra decompiler,
// the paper's binary-level baseline. Ghidra consumes stripped binaries:
// all debug metadata and symbol names are gone, so the decompiled source
// uses synthetic names (param_1, uVar2, local_18, DAT_00100040), and its
// house style wraps operands in explicit casts. Control flow is
// structured (do-while for rotated loops), but parallel runtime calls
// survive untranslated.
package ghidra

import (
	"repro/internal/cast"
	"repro/internal/decomp"
	"repro/internal/ir"
)

// Decompile strips the module (a fresh deep copy — the input is not
// modified) and translates it in Ghidra style.
func Decompile(m *ir.Module) *cast.File {
	stripped := Strip(m)
	opts := decomp.Options{
		Structured: true,
		ForLoops:   false,
		Fold:       false,
		CastHappy:  true,
		Name:       decomp.GhidraNamer(),
	}
	return decomp.TranslateModule(stripped, opts, nil)
}

// Strip returns a copy of the module with debug intrinsics removed —
// the binary-level information loss Ghidra operates under.
func Strip(m *ir.Module) *ir.Module {
	text := m.Print()
	sm := ir.MustParse(text)
	for _, f := range sm.Funcs {
		for _, b := range f.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				if b.Instrs[i].Op == ir.OpDbgValue {
					b.Remove(i)
				}
			}
		}
	}
	return sm
}
