package decomp

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/ir"
)

const diamondIR = `
@G = global i64 0
define i64 @absdiff(i64 %a, i64 %b) {
entry:
  %c = icmp slt i64 %a, %b
  br i1 %c, label %lt, label %ge
lt:
  %d1 = sub i64 %b, %a
  br label %join
ge:
  %d2 = sub i64 %a, %b
  br label %join
join:
  %d = phi i64 [ %d1, %lt ], [ %d2, %ge ]
  store i64 %d, i64* @G
  ret i64 %d
}
`

func TestStructuredIfElse(t *testing.T) {
	m := ir.MustParse(diamondIR)
	fd := TranslateFunction(m.FuncByName("absdiff"), Options{Structured: true, Fold: true})
	c := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{fd}})
	if !strings.Contains(c, "if (a < b) {") {
		t.Errorf("no structured if:\n%s", c)
	}
	if strings.Contains(c, "goto") {
		t.Errorf("goto in structurable CFG:\n%s", c)
	}
	// The phi becomes a variable assigned on both branches.
	if !strings.Contains(c, "d = b - a;") || !strings.Contains(c, "d = a - b;") {
		t.Errorf("phi copies missing:\n%s", c)
	}
}

func TestUnstructuredEmitsGotos(t *testing.T) {
	m := ir.MustParse(diamondIR)
	fd := TranslateFunction(m.FuncByName("absdiff"), Options{Structured: false, Name: IRNamer("llvm_cbe_")})
	c := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{fd}})
	for _, want := range []string{"entry:;", "goto lt;", "goto ge;", "join:;", "llvm_cbe_d"} {
		if !strings.Contains(c, want) {
			t.Errorf("missing %q:\n%s", want, c)
		}
	}
}

const rotatedIR = `
@A = global [100 x double] zeroinitializer
define void @fill(i64 %n) {
entry:
  %guard = icmp sgt i64 %n, 0
  br i1 %guard, label %body, label %exit
body:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %g = getelementptr [100 x double], [100 x double]* @A, i64 0, i64 %i
  store double 1.0, double* %g
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  br i1 %c, label %body, label %exit
exit:
  ret void
}
`

func TestRotatedLoopBecomesDoWhile(t *testing.T) {
	m := ir.MustParse(rotatedIR)
	fd := TranslateFunction(m.FuncByName("fill"), Options{Structured: true, Fold: false, Name: SeqNamer("val")})
	c := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{fd}})
	if !strings.Contains(c, "do {") || !strings.Contains(c, "} while (") {
		t.Errorf("rotated loop not do-while:\n%s", c)
	}
	if !strings.Contains(c, "if (") {
		t.Errorf("guard check missing:\n%s", c)
	}
}

const whileIR = `
define i64 @countdown(i64 %n) {
entry:
  br label %head
head:
  %i = phi i64 [ %n, %entry ], [ %i.next, %body ]
  %c = icmp sgt i64 %i, 0
  br i1 %c, label %body, label %done
body:
  %i.next = sub i64 %i, 1
  br label %head
done:
  ret i64 %i
}
`

func TestCanonicalLoopForms(t *testing.T) {
	// Without ForLoops: while. With ForLoops: for.
	m := ir.MustParse(whileIR)
	noFor := TranslateFunction(m.FuncByName("countdown"), Options{Structured: true})
	c1 := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{noFor}})
	if !strings.Contains(c1, "while (") {
		t.Errorf("no while loop:\n%s", c1)
	}
	m2 := ir.MustParse(whileIR)
	withFor := TranslateFunction(m2.FuncByName("countdown"), Options{Structured: true, ForLoops: true, Fold: true})
	c2 := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{withFor}})
	if !strings.Contains(c2, "for (long i = n; i > 0; i--) {") {
		t.Errorf("no for loop:\n%s", c2)
	}
}

func TestFoldingBuildsCompoundExpressions(t *testing.T) {
	m := ir.MustParse(`
@A = global [10 x double] zeroinitializer
@B = global [10 x double] zeroinitializer
define void @f(i64 %i) {
entry:
  %ga = getelementptr [10 x double], [10 x double]* @A, i64 0, i64 %i
  %va = load double, double* %ga
  %gb = getelementptr [10 x double], [10 x double]* @B, i64 0, i64 %i
  %t = fmul double %va, 2.0
  %u = fadd double %t, 1.0
  store double %u, double* %gb
  ret void
}
`)
	fd := TranslateFunction(m.FuncByName("f"), Options{Structured: true, Fold: true})
	c := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{fd}})
	if !strings.Contains(c, "B[i] = A[i] * 2.0 + 1.0;") {
		t.Errorf("expressions not folded:\n%s", c)
	}
}

func TestFoldRespectsStoreBarrier(t *testing.T) {
	// The load of A[0] must not move past the store to A[0].
	m := ir.MustParse(`
@A = global [10 x double] zeroinitializer
@B = global [10 x double] zeroinitializer
define void @f() {
entry:
  %ga = getelementptr [10 x double], [10 x double]* @A, i64 0, i64 0
  %old = load double, double* %ga
  store double 9.0, double* %ga
  %gb = getelementptr [10 x double], [10 x double]* @B, i64 0, i64 0
  store double %old, double* %gb
  ret void
}
`)
	fd := TranslateFunction(m.FuncByName("f"), Options{Structured: true, Fold: true})
	c := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{fd}})
	// old must be materialized before the store of 9.0 (the gep has two
	// uses, so the access may print through a pointer temporary).
	oldAt := strings.Index(c, "old = ")
	nineAt := strings.Index(c, "= 9.0;")
	if oldAt < 0 || nineAt < 0 || oldAt > nineAt {
		t.Errorf("load moved across store:\n%s", c)
	}
}

// TestEmittedIdentifiersAreDeclared is the consistency invariant that
// caught real bugs during development: every identifier referenced in
// the output must be a parameter, a declared local, a global, a function
// name, or a label.
func TestEmittedIdentifiersAreDeclared(t *testing.T) {
	sources := []string{diamondIR, rotatedIR, whileIR}
	for _, src := range sources {
		m := ir.MustParse(src)
		for _, opts := range []Options{
			{Structured: true, Fold: true, ForLoops: true},
			{Structured: true, Fold: false},
			{Structured: false},
		} {
			file := TranslateModule(m, opts, nil)
			checkDeclared(t, m, file)
		}
	}
}

func checkDeclared(t *testing.T, m *ir.Module, file *cast.File) {
	t.Helper()
	declared := map[string]bool{"M_PI": true}
	for _, g := range m.Globals {
		declared[sanitize(g.Nam)] = true
	}
	for _, f := range m.Funcs {
		declared[sanitize(f.Nam)] = true
	}
	for _, fn := range file.Funcs {
		local := map[string]bool{}
		for k := range declared {
			local[k] = true
		}
		for _, p := range fn.Params {
			local[p.Name] = true
		}
		collectDeclsInto(fn.Body, local)
		var missing []string
		walkIdents(fn.Body, func(name string) {
			if !local[name] {
				missing = append(missing, name)
			}
		})
		if len(missing) > 0 {
			t.Errorf("%s: undeclared identifiers %v:\n%s", fn.Name, missing,
				cast.Print(&cast.File{Funcs: []*cast.FuncDecl{fn}}))
		}
	}
}

func collectDeclsInto(n any, out map[string]bool) {
	switch x := n.(type) {
	case *cast.Block:
		for _, s := range x.Stmts {
			collectDeclsInto(s, out)
		}
	case *cast.Decl:
		out[x.Name] = true
	case *cast.If:
		collectDeclsInto(x.Then, out)
		if x.Else != nil {
			collectDeclsInto(x.Else, out)
		}
	case *cast.For:
		collectDeclsInto(x.Init, out)
		collectDeclsInto(x.Body, out)
	case *cast.While:
		collectDeclsInto(x.Body, out)
	case *cast.DoWhile:
		collectDeclsInto(x.Body, out)
	case *cast.OmpParallel:
		collectDeclsInto(x.Body, out)
	case *cast.OmpFor:
		collectDeclsInto(x.Loop, out)
	case *cast.OmpParallelFor:
		collectDeclsInto(x.Loop, out)
	}
}

func walkIdents(n any, fn func(string)) {
	switch x := n.(type) {
	case nil:
	case *cast.Block:
		for _, s := range x.Stmts {
			walkIdents(s, fn)
		}
	case *cast.Decl:
		walkIdents(x.Init, fn)
	case *cast.ExprStmt:
		walkIdents(x.X, fn)
	case *cast.If:
		walkIdents(x.Cond, fn)
		walkIdents(x.Then, fn)
		if x.Else != nil {
			walkIdents(x.Else, fn)
		}
	case *cast.For:
		walkIdents(x.Init, fn)
		walkIdents(x.Cond, fn)
		walkIdents(x.Post, fn)
		walkIdents(x.Body, fn)
	case *cast.While:
		walkIdents(x.Cond, fn)
		walkIdents(x.Body, fn)
	case *cast.DoWhile:
		walkIdents(x.Cond, fn)
		walkIdents(x.Body, fn)
	case *cast.Return:
		walkIdents(x.X, fn)
	case *cast.OmpParallel:
		walkIdents(x.Body, fn)
	case *cast.OmpFor:
		walkIdents(x.Loop, fn)
	case *cast.OmpParallelFor:
		walkIdents(x.Loop, fn)
	case *cast.Ident:
		fn(x.Name)
	case *cast.Bin:
		walkIdents(x.L, fn)
		walkIdents(x.R, fn)
	case *cast.Un:
		walkIdents(x.X, fn)
	case *cast.Index:
		walkIdents(x.Base, fn)
		walkIdents(x.Idx, fn)
	case *cast.Call:
		for _, a := range x.Args {
			walkIdents(a, fn)
		}
	case *cast.CastE:
		walkIdents(x.X, fn)
	case *cast.Ternary:
		walkIdents(x.C, fn)
		walkIdents(x.T, fn)
		walkIdents(x.F, fn)
	case *cast.Assign:
		walkIdents(x.LHS, fn)
		walkIdents(x.RHS, fn)
	case *cast.IncDec:
		walkIdents(x.X, fn)
	case *cast.Paren:
		walkIdents(x.X, fn)
	}
}

func TestNamers(t *testing.T) {
	m := ir.MustParse(diamondIR)
	f := m.FuncByName("absdiff")
	var d1, d2 ir.Value
	f.Instrs(func(in *ir.Instr) {
		if in.Nam == "d1" {
			d1 = in
		}
		if in.Nam == "d2" {
			d2 = in
		}
	})
	seq := SeqNamer("val")
	n1, n2 := seq(d1), seq(d2)
	if n1 == n2 || !strings.HasPrefix(n1, "val") {
		t.Errorf("SeqNamer names %q %q", n1, n2)
	}
	if seq(d1) != n1 {
		t.Error("SeqNamer not memoized")
	}

	gh := GhidraNamer()
	g := m.GlobalByName("G")
	if gh(g) != "G" {
		// Data symbols survive stripping (only debug info is gone).
		t.Errorf("GhidraNamer global = %q, want symtab name G", gh(g))
	}
	if !strings.HasPrefix(gh(f.Params[0]), "param_") {
		t.Errorf("GhidraNamer param = %q", gh(f.Params[0]))
	}

	src := SourceNamer(map[ir.Value]string{d1: "delta"})
	if src(d1) != "delta" {
		t.Errorf("SourceNamer mapped = %q", src(d1))
	}
	if src(d2) != "d2" {
		t.Errorf("SourceNamer fallback = %q", src(d2))
	}
}

func TestPrivatizeRegionLocals(t *testing.T) {
	fd := &cast.FuncDecl{
		Ret: cast.VoidT, Name: "k",
		Body: &cast.Block{Stmts: []cast.Stmt{
			&cast.Decl{T: cast.DoubleT, Name: "tmp"},
			&cast.Decl{T: cast.DoubleT, Name: "outer"},
			&cast.OmpParallel{Body: &cast.Block{Stmts: []cast.Stmt{
				&cast.ExprStmt{X: &cast.Assign{Op: "=", LHS: &cast.Ident{Name: "tmp"}, RHS: &cast.IntLit{V: 1}}},
			}}},
			&cast.ExprStmt{X: &cast.Assign{Op: "=", LHS: &cast.Ident{Name: "outer"}, RHS: &cast.IntLit{V: 2}}},
		}},
	}
	privatizeRegionLocals(fd)
	c := cast.Print(&cast.File{Funcs: []*cast.FuncDecl{fd}})
	idx := strings.Index(c, "#pragma omp parallel")
	tmpDecl := strings.Index(c, "double tmp;")
	if tmpDecl < idx {
		t.Errorf("tmp not privatized into the region:\n%s", c)
	}
	outerDecl := strings.Index(c, "double outer;")
	if outerDecl > idx {
		t.Errorf("outer wrongly privatized:\n%s", c)
	}
}
