// Internal tests for the session flight recorder: ring mechanics on
// the raw type, and a schema check on the JSON the debug server hands
// out, driven through real pipeline jobs.
package driver

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/metrics"
)

// TestFlightRecorderRing: the ring evicts oldest-first, sequence
// numbers stay monotonic across eviction, and the snapshot reports both
// the retained window and the all-time count.
func TestFlightRecorderRing(t *testing.T) {
	fr := newFlightRecorder(3)
	for i := 0; i < 5; i++ {
		fr.record(JobRecord{Kind: "compile"})
	}
	snap := fr.Snapshot()
	if snap.Schema != FlightRecordSchema {
		t.Errorf("schema = %q, want %q", snap.Schema, FlightRecordSchema)
	}
	if snap.Capacity != 3 || snap.Recorded != 5 {
		t.Errorf("capacity/recorded = %d/%d, want 3/5", snap.Capacity, snap.Recorded)
	}
	if len(snap.Jobs) != 3 {
		t.Fatalf("retained %d jobs, want 3", len(snap.Jobs))
	}
	for i, want := range []int64{3, 4, 5} {
		if snap.Jobs[i].Seq != want {
			t.Errorf("jobs[%d].Seq = %d, want %d (oldest first)", i, snap.Jobs[i].Seq, want)
		}
	}
}

// TestFlightRecorderIngestSince: Since returns only records past a
// sequence watermark (the fleet worker's "new since last response"
// delta), and Ingest re-sequences foreign records locally while
// preserving their Process provenance tag.
func TestFlightRecorderIngestSince(t *testing.T) {
	fr := newFlightRecorder(8)
	for i := 0; i < 4; i++ {
		fr.record(JobRecord{Kind: "shard"})
	}
	since := fr.Since(2)
	if len(since) != 2 || since[0].Seq != 3 || since[1].Seq != 4 {
		t.Fatalf("Since(2) = %+v, want seqs [3 4]", since)
	}
	if got := fr.Since(99); len(got) != 0 {
		t.Errorf("Since(99) = %+v, want empty", got)
	}

	coord := newFlightRecorder(8)
	coord.record(JobRecord{Kind: "compile", Name: "local"})
	for _, jr := range since {
		jr.Process = "worker0"
		coord.Ingest(jr)
	}
	snap := coord.Snapshot()
	if len(snap.Jobs) != 3 {
		t.Fatalf("coordinator retained %d jobs, want 3", len(snap.Jobs))
	}
	for i, jr := range snap.Jobs {
		if jr.Seq != int64(i+1) {
			t.Errorf("jobs[%d].Seq = %d, want %d (re-sequenced locally)", i, jr.Seq, i+1)
		}
	}
	if snap.Jobs[0].Process != "" || snap.Jobs[1].Process != "worker0" || snap.Jobs[2].Process != "worker0" {
		t.Errorf("process tags = %q/%q/%q, want \"\"/worker0/worker0",
			snap.Jobs[0].Process, snap.Jobs[1].Process, snap.Jobs[2].Process)
	}

	// Nil safety.
	var nilFR *FlightRecorder
	nilFR.Ingest(JobRecord{Kind: "shard"})
	if got := nilFR.Since(0); got != nil {
		t.Errorf("nil Since = %+v, want nil", got)
	}
}

// TestFlightRecorderNil: a nil recorder (recording disabled) must
// swallow records and serve a valid empty document, not crash or error.
func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.record(JobRecord{Kind: "execute"})
	snap := fr.Snapshot()
	if snap.Schema != FlightRecordSchema || snap.Capacity != 0 || snap.Recorded != 0 {
		t.Errorf("nil snapshot = %+v, want empty %s document", snap, FlightRecordSchema)
	}
	if snap.Jobs == nil || len(snap.Jobs) != 0 {
		t.Errorf("nil snapshot jobs = %#v, want non-nil empty slice", snap.Jobs)
	}
	b, err := fr.JobsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), FlightRecordSchema) {
		t.Errorf("nil JobsJSON missing schema: %s", b)
	}
}

// flightSource is a small program whose init loop the parallelizer
// accepts, so a round trip exercises every field the recorder captures.
const flightSource = `
long A[256];

long main() {
  for (long i = 0; i < 256; i++) {
    A[i] = i * 2;
  }
  long s = 0;
  for (long i = 0; i < 256; i++) {
    s = s + A[i];
  }
  return s;
}
`

// TestFlightRecordSchemaGolden drives real jobs through an instrumented
// session and validates the versioned /debug/jobs document: schema tag,
// job kinds, per-stage timings, memo lookups, profile digest, and race
// verdict all present where the job type promises them.
func TestFlightRecordSchemaGolden(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Options{Jobs: 1, Metrics: reg})

	if _, err := s.RoundTrip("flight", flightSource, RoundTripOptions{Threads: 4}); err != nil {
		t.Fatal(err)
	}
	m, pres, err := s.ParallelIR("flight", flightSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Parallelized) == 0 {
		t.Fatal("flightSource did not parallelize; the profile digest check needs a region")
	}
	if _, err := s.Execute(m, ExecOptions{Entry: "main", NumThreads: 4, Profile: true, CheckRaces: true}); err != nil {
		t.Fatal(err)
	}

	raw, err := s.Recorder().JobsJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The document must re-parse under the declared schema.
	var doc JobsSnapshot
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("JobsJSON is not valid JSON: %v", err)
	}
	if doc.Schema != FlightRecordSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, FlightRecordSchema)
	}
	if doc.Capacity != defaultJobHistory || doc.Recorded != 3 || len(doc.Jobs) != 3 {
		t.Fatalf("capacity/recorded/retained = %d/%d/%d, want %d/3/3",
			doc.Capacity, doc.Recorded, len(doc.Jobs), defaultJobHistory)
	}

	rt, compile, exec := doc.Jobs[0], doc.Jobs[1], doc.Jobs[2]

	// Job 1: the round trip. Nested stage calls must not have produced
	// extra job records, only stage timings on this one record.
	if rt.Kind != "roundtrip" || rt.Name != "flight" {
		t.Errorf("job 1 = %s/%s, want roundtrip/flight", rt.Kind, rt.Name)
	}
	if len(rt.SourceHash) != 16 {
		t.Errorf("roundtrip source_hash = %q, want 16 hex digits", rt.SourceHash)
	}
	if rt.WallNS <= 0 {
		t.Errorf("roundtrip wall_ns = %d, want > 0", rt.WallNS)
	}
	wantStages := map[string]int{"frontend": 2, "optimize": 2, "parallelize": 1, "decompile": 1}
	gotStages := map[string]int{}
	for _, st := range rt.Stages {
		gotStages[st.Stage]++
		if st.WallNS < 0 {
			t.Errorf("stage %s wall_ns = %d, want >= 0", st.Stage, st.WallNS)
		}
	}
	for stage, want := range wantStages {
		if gotStages[stage] != want {
			t.Errorf("roundtrip ran stage %s %d time(s), want %d (stages: %v)",
				stage, gotStages[stage], want, rt.Stages)
		}
	}
	if rt.Profile == nil || rt.Profile.Regions == 0 {
		t.Errorf("roundtrip profile digest = %+v, want parallel regions recorded", rt.Profile)
	}
	if rt.RaceVerdict != "clean" {
		t.Errorf("roundtrip race_verdict = %q, want clean", rt.RaceVerdict)
	}
	if rt.ParallelLoops == 0 {
		t.Error("roundtrip parallel_loops = 0, want > 0")
	}
	if len(rt.Divergences) != 0 {
		t.Errorf("roundtrip divergences = %v, want none", rt.Divergences)
	}

	// Job 2: the memoized compile, with its prefix-memo probes.
	if compile.Kind != "compile" {
		t.Errorf("job 2 kind = %q, want compile", compile.Kind)
	}
	var prefixes []string
	for _, c := range compile.Cache {
		prefixes = append(prefixes, c.Prefix)
		if c.Hit {
			t.Errorf("cold compile reported a memo hit on prefix %q", c.Prefix)
		}
	}
	// A cold ParallelIR probes the parallel memo, then the optimized one.
	if strings.Join(prefixes, ",") != "parallel,optimized" {
		t.Errorf("compile cache probes = %v, want [parallel optimized]", prefixes)
	}

	// Job 3: the execution, with profile digest and race verdict.
	if exec.Kind != "execute" || exec.Name != "main" {
		t.Errorf("job 3 = %s/%s, want execute/main", exec.Kind, exec.Name)
	}
	if exec.Profile == nil || exec.Profile.Regions == 0 || exec.Profile.WorkSteps <= 0 {
		t.Errorf("execute profile digest = %+v, want regions and work recorded", exec.Profile)
	}
	if exec.RaceVerdict != "clean" {
		t.Errorf("execute race_verdict = %q, want clean", exec.RaceVerdict)
	}

	// The same work must have fed the job counters on the registry.
	for kind, want := range map[string]int64{"roundtrip": 1, "compile": 1, "execute": 1} {
		if got := reg.Counter("splendid_driver_jobs_completed_total", "", metrics.L("kind", kind)).Value(); got != want {
			t.Errorf("jobs_completed{kind=%s} = %d, want %d", kind, got, want)
		}
	}
}

// TestFlightRecorderDisabled: JobHistoryLimit < 0 disables recording while
// leaving jobs themselves working, and the session serves the empty
// document.
func TestFlightRecorderDisabled(t *testing.T) {
	s := New(Options{Jobs: 1, JobHistoryLimit: -1})
	m, _, err := s.ParallelIR("flight", flightSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(m, ExecOptions{Entry: "main"}); err != nil {
		t.Fatal(err)
	}
	snap := s.RecentJobs()
	if snap.Capacity != 0 || snap.Recorded != 0 || len(snap.Jobs) != 0 {
		t.Errorf("disabled recorder snapshot = %+v, want empty", snap)
	}
	if s.Recorder() != nil {
		t.Error("disabled session handed out a non-nil recorder")
	}
}

// TestShardJobRecord: the differential fleet's "shard" job kind is a
// first-class flight-recorder citizen — it lands in /debug/jobs with
// its divergence classes, feeds the pre-registered jobs_* counters, and
// the whole handle is nil-safe when recording is disabled.
func TestShardJobRecord(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Options{Jobs: 1, Metrics: reg})
	errInfra := errors.New("worker lost")

	ok := s.StartShardJob("shard0[0+50)")
	ok.Divergences([]string{"opt", "parallel"})
	ok.Finish(nil)
	bad := s.StartShardJob("shard1[50+50)")
	bad.Finish(errInfra)

	snap := s.RecentJobs()
	if len(snap.Jobs) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(snap.Jobs))
	}
	first, second := snap.Jobs[0], snap.Jobs[1]
	if first.Kind != "shard" || first.Name != "shard0[0+50)" {
		t.Errorf("job 1 = %s/%s, want shard/shard0[0+50)", first.Kind, first.Name)
	}
	if strings.Join(first.Divergences, ",") != "opt,parallel" {
		t.Errorf("job 1 divergences = %v, want [opt parallel]", first.Divergences)
	}
	if first.Err != "" {
		t.Errorf("job 1 err = %q, want clean", first.Err)
	}
	if second.Err != errInfra.Error() {
		t.Errorf("job 2 err = %q, want %q", second.Err, errInfra)
	}
	if got := reg.Counter("splendid_driver_jobs_completed_total", "", metrics.L("kind", "shard")).Value(); got != 1 {
		t.Errorf("jobs_completed{kind=shard} = %d, want 1", got)
	}
	if got := reg.Counter("splendid_driver_jobs_failed_total", "", metrics.L("kind", "shard")).Value(); got != 1 {
		t.Errorf("jobs_failed{kind=shard} = %d, want 1", got)
	}

	// Nil safety: disabled recording and a nil handle both no-op.
	off := New(Options{Jobs: 1, JobHistoryLimit: -1})
	j := off.StartShardJob("shard2[100+50)")
	j.Divergences([]string{"opt"})
	j.Finish(nil)
	var nilJob *ShardJob
	nilJob.Divergences([]string{"opt"})
	nilJob.Finish(nil)
}

// racyIR forks a region where every thread stores to the same cell, so
// the conflict checker must convict it.
const racyIR = `
@X = global [4 x i64] zeroinitializer

declare void @__kmpc_fork_call(i32, ...)

define void @racy.omp(i32* %gtid.ptr, i32* %btid.ptr) outlined {
entry:
  %gtid = load i32, i32* %gtid.ptr
  %tid64 = sext i32 %gtid to i64
  %g = getelementptr [4 x i64], [4 x i64]* @X, i64 0, i64 0
  store i64 %tid64, i64* %g
  ret void
}
define void @main() {
entry:
  call void @__kmpc_fork_call(i32 0, void (i32*, i32*) @racy.omp)
  ret void
}
`

// TestExecuteRaceVerdictConflicts: a racy region must land in the
// record as "conflicts", not "clean".
func TestExecuteRaceVerdictConflicts(t *testing.T) {
	s := New(Options{Jobs: 1})
	m, err := ir.Parse(racyIR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(m, ExecOptions{NumThreads: 4, CheckRaces: true}); err != nil {
		t.Fatal(err)
	}
	snap := s.RecentJobs()
	if len(snap.Jobs) != 1 {
		t.Fatalf("retained %d jobs, want 1", len(snap.Jobs))
	}
	if v := snap.Jobs[0].RaceVerdict; v != "conflicts" {
		t.Errorf("race_verdict = %q, want conflicts", v)
	}
}
