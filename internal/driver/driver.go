// Package driver is the unified compilation driver: a Session owns the
// whole source→IR→optimize→parallelize→decompile→emit pipeline and is
// the single entry point the CLIs (ccomp, splendid, experiments) and the
// experiments harness construct pipelines through.
//
// A Session carries three pieces of shared state across stage calls:
//
//   - an analysis manager (internal/analysis.Manager) caching dominator
//     trees, post-dominator trees, and loop forests per function, keyed
//     on content hashes, so passes stop recomputing them;
//   - a worker pool configuration (Jobs) driving the function scheduler:
//     function-local stages run in bottom-up call-graph SCC order across
//     workers, with module stages as barriers, and results byte-identical
//     to serial execution at any worker count;
//   - a memo of compiled pipeline prefixes: OptimizedIR and ParallelIR
//     cache the frontend+O2(+parallelize) result per (name, source) pair
//     as printed IR text, so the experiments harness forks only the
//     SPLENDID config tail instead of recompiling the shared prefix for
//     every ablation variant.
//
// Sessions are safe for concurrent use: independent modules may flow
// through the stages from multiple goroutines (the analysis cache and
// memo are internally locked, and the scheduler guarantees at most one
// worker per function).
package driver

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/cbackend"
	"repro/internal/cfront"
	"repro/internal/decomp/ghidra"
	"repro/internal/decomp/rellic"
	"repro/internal/evlog"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/passes"
	"repro/internal/splendid"
	"repro/internal/telemetry"
)

// Options configures a Session.
type Options struct {
	// Jobs is the function-level parallelism degree: 0 means GOMAXPROCS,
	// 1 means fully serial, N>1 runs function-local stages on N workers.
	Jobs int
	// VerifyEach runs ir.Verify between driver stages and after every
	// pass, failing with the offending pass or stage name.
	VerifyEach bool
	// Telemetry receives stage/pass spans, counters, and remarks from
	// every stage this session runs (nil disables collection).
	Telemetry *telemetry.Ctx
	// Metrics receives live counters and histograms from every layer the
	// session touches — driver jobs and stage latencies, analysis-cache
	// behaviour, scheduler utilization, interpreter activity — for
	// scraping via the debug server. Nil disables collection.
	Metrics *metrics.Registry
	// JobHistoryLimit is the flight recorder's capacity: how many recent
	// pipeline jobs /debug/jobs retains. 0 means the default (64);
	// negative disables recording entirely.
	JobHistoryLimit int
	// Events receives structured lifecycle records (job start/done/fail)
	// from every job the session runs — the narrative counterpart of the
	// metrics counters, served at /debug/events. Nil disables logging.
	Events *evlog.Log
}

// defaultJobHistory is the flight-recorder capacity when Options leaves
// JobHistoryLimit at zero.
const defaultJobHistory = 64

// Session is one compilation pipeline instance. The zero value is not
// useful; use New.
type Session struct {
	opts Options
	jobs int
	am   *analysis.Manager

	met sessionMetrics
	rec *FlightRecorder
	ev  *evlog.Scope

	mu   sync.Mutex
	memo map[uint64]*memoEntry
	// flushed tracks what FlushCounters already reported, so repeated
	// flushes emit deltas rather than double-counting.
	flushed analysis.Stats
}

// memoEntry caches one compiled pipeline prefix as printed IR text.
// Text, not modules: callers receive a private reparse, so mutating a
// returned module can never corrupt the cache (the same isolation idiom
// as the decompiler's clone-by-reparse).
type memoEntry struct {
	optimized string           // IR text after frontend + O2
	parallel  string           // IR text after frontend + O2 + parallelize
	parRes    *parallel.Result // result snapshot for the parallel prefix
}

// New returns a Session with its own analysis cache and prefix memo.
func New(opts Options) *Session {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	history := opts.JobHistoryLimit
	if history == 0 {
		history = defaultJobHistory
	}
	am := analysis.NewManager()
	am.SetMetrics(opts.Metrics)
	return &Session{
		opts: opts,
		jobs: jobs,
		am:   am,
		met:  newSessionMetrics(opts.Metrics),
		rec:  newFlightRecorder(history),
		ev:   opts.Events.Scope("driver"),
		memo: map[uint64]*memoEntry{},
	}
}

// Recorder exposes the session's flight recorder for mounting on a
// debug server (nil when recording is disabled; debugserv handles a
// typed-nil source).
func (s *Session) Recorder() *FlightRecorder { return s.rec }

// RecentJobs snapshots the flight recorder (empty when disabled).
func (s *Session) RecentJobs() JobsSnapshot { return s.rec.Snapshot() }

// Metrics returns the session's metrics registry (possibly nil).
func (s *Session) Metrics() *metrics.Registry { return s.opts.Metrics }

// Jobs reports the resolved worker count.
func (s *Session) Jobs() int { return s.jobs }

// Telemetry returns the session's telemetry context (possibly nil).
func (s *Session) Telemetry() *telemetry.Ctx { return s.opts.Telemetry }

// AnalysisStats reports the session's analysis-cache behaviour.
func (s *Session) AnalysisStats() analysis.Stats {
	return s.am.Stats()
}

// FlushCounters records the session's cache statistics as telemetry
// counters (analysis.cache.hits/misses/rekeys), so -time-passes style
// reports include the caching win. Safe to call multiple times: counters
// record the delta since the previous flush.
func (s *Session) FlushCounters() {
	tc := s.opts.Telemetry
	if !tc.Enabled() {
		return
	}
	st := s.am.Stats()
	s.mu.Lock()
	d := analysis.Stats{
		Hits:          st.Hits - s.flushed.Hits,
		Misses:        st.Misses - s.flushed.Misses,
		Rekeys:        st.Rekeys - s.flushed.Rekeys,
		Invalidations: st.Invalidations - s.flushed.Invalidations,
	}
	s.flushed = st
	s.mu.Unlock()
	tc.Count("analysis.cache.hits", int(d.Hits))
	tc.Count("analysis.cache.misses", int(d.Misses))
	tc.Count("analysis.cache.rekeys", int(d.Rekeys))
	tc.Count("analysis.cache.invalidations", int(d.Invalidations))
}

// verify applies the between-stage check when the session asks for it.
func (s *Session) verify(m *ir.Module, stage string) error {
	if !s.opts.VerifyEach {
		return nil
	}
	if err := m.Verify(); err != nil {
		return fmt.Errorf("verify-each: stage %q broke the module: %w", stage, err)
	}
	return nil
}

// Frontend compiles C source into unoptimized IR.
func (s *Session) Frontend(src, name string) (*ir.Module, error) {
	return s.frontend(src, name, nil)
}

func (s *Session) frontend(src, name string, jb *jobBuilder) (*ir.Module, error) {
	sp := s.startStage(jb, "frontend")
	defer sp.end()
	m, err := cfront.CompileSourceCtx(src, name, s.opts.Telemetry)
	if err != nil {
		return nil, err
	}
	if err := s.verify(m, "frontend"); err != nil {
		return nil, err
	}
	return m, nil
}

// Optimize runs the O2 fixed point on m in place, with cached analyses
// and the session's worker pool.
func (s *Session) Optimize(m *ir.Module) error {
	return s.optimize(m, nil)
}

func (s *Session) optimize(m *ir.Module, jb *jobBuilder) error {
	sp := s.startStage(jb, "optimize")
	defer sp.end()
	if err := passes.OptimizeConfig(m, s.runConfig()); err != nil {
		return err
	}
	return s.verify(m, "optimize")
}

// RunPasses runs an ad-hoc pass pipeline on m under the session's
// execution policy (cached analyses, worker pool, verify-each).
func (s *Session) RunPasses(m *ir.Module, pipeline ...passes.Pass) (bool, error) {
	return passes.RunPipelineConfig(m, s.runConfig(), pipeline...)
}

func (s *Session) runConfig() passes.RunConfig {
	return passes.RunConfig{
		Analyses:   s.am,
		Telemetry:  s.opts.Telemetry,
		VerifyEach: s.opts.VerifyEach,
		Workers:    s.jobs,
		Metrics:    s.opts.Metrics,
	}
}

// Parallelize converts DOALL loops of m into outlined microtasks in
// place. It is a module-level barrier stage: it adds outlined functions
// and rewrites callers, so the analysis cache is invalidated wholesale.
func (s *Session) Parallelize(m *ir.Module) (*parallel.Result, error) {
	return s.parallelize(m, nil)
}

func (s *Session) parallelize(m *ir.Module, jb *jobBuilder) (*parallel.Result, error) {
	sp := s.startStage(jb, "parallelize")
	defer sp.end()
	res := parallel.Parallelize(m, parallel.Options{
		Telemetry: s.opts.Telemetry,
		Analyses:  s.am,
	})
	s.am.InvalidateAll()
	if err := s.verify(m, "parallelize"); err != nil {
		return nil, err
	}
	return res, nil
}

// Decompile translates parallel IR into OpenMP C under cfg, fanning the
// per-function detransformer and emission stages across the session's
// workers. The input module is not modified. The decompiler works on a
// clone with its own short-lived analysis cache, so concurrent Decompile
// calls on one session never contend on entries.
func (s *Session) Decompile(m *ir.Module, cfg splendid.Config) (*splendid.Result, error) {
	jb := s.startJob("decompile", m.Name)
	res, err := s.decompile(m, cfg, jb)
	jb.finish(err)
	return res, err
}

func (s *Session) decompile(m *ir.Module, cfg splendid.Config, jb *jobBuilder) (*splendid.Result, error) {
	sp := s.startStage(jb, "decompile")
	defer sp.end()
	return splendid.DecompileOpts(m, cfg, splendid.Opts{
		Telemetry:  s.opts.Telemetry,
		Analyses:   analysis.NewManager(),
		Workers:    s.jobs,
		VerifyEach: s.opts.VerifyEach,
		Metrics:    s.opts.Metrics,
	})
}

// DecompileVariant decompiles m under a named variant: the SPLENDID
// configurations ("full", "portable", "v1") or the baseline decompilers
// ("cbackend", "rellic", "ghidra"). The C text is returned for every
// variant; Stats only for SPLENDID ones (nil otherwise).
func (s *Session) DecompileVariant(m *ir.Module, variant string) (string, *splendid.Stats, error) {
	switch variant {
	case "cbackend":
		return cast.Print(cbackend.Decompile(m)), nil, nil
	case "rellic":
		return cast.Print(rellic.Decompile(m)), nil, nil
	case "ghidra":
		return cast.Print(ghidra.Decompile(m)), nil, nil
	}
	var cfg splendid.Config
	switch variant {
	case "full":
		cfg = splendid.Full()
	case "portable":
		cfg = splendid.Portable()
	case "v1":
		cfg = splendid.V1()
	default:
		return "", nil, fmt.Errorf("unknown variant %q", variant)
	}
	res, err := s.Decompile(m, cfg)
	if err != nil {
		return "", nil, err
	}
	stats := res.Stats
	return res.C, &stats, nil
}

// memoKey derives the prefix-memo key for a (name, source) pair.
func memoKey(name, src string) uint64 {
	return ir.HashBytes(name + "\x00" + src)
}

// OptimizedIR returns the frontend+O2 compilation of src, memoized per
// (name, src): the first call compiles, later calls reparse the cached IR
// text. The returned module is private to the caller.
func (s *Session) OptimizedIR(name, src string) (*ir.Module, error) {
	jb := s.startJob("compile", name)
	jb.source(src)
	m, err := s.optimizedIR(name, src, jb)
	jb.finish(err)
	return m, err
}

func (s *Session) optimizedIR(name, src string, jb *jobBuilder) (*ir.Module, error) {
	key := memoKey(name, src)
	s.mu.Lock()
	e := s.memo[key]
	if e != nil && e.optimized != "" {
		text := e.optimized
		s.mu.Unlock()
		s.memoLookup(jb, "optimized", true)
		return ir.Parse(text)
	}
	s.mu.Unlock()
	s.memoLookup(jb, "optimized", false)

	m, err := s.frontend(src, name, jb)
	if err != nil {
		return nil, err
	}
	if err := s.optimize(m, jb); err != nil {
		return nil, err
	}
	text := m.Print()
	s.mu.Lock()
	if s.memo[key] == nil {
		s.memo[key] = &memoEntry{}
	}
	s.memo[key].optimized = text
	s.mu.Unlock()
	return m, nil
}

// ParallelIR returns the frontend+O2+parallelize compilation of src,
// memoized per (name, src). This is the shared prefix of every ablation
// variant in the experiments harness: variants fork only the decompile
// tail. The returned module and Result are private to the caller.
func (s *Session) ParallelIR(name, src string) (*ir.Module, *parallel.Result, error) {
	jb := s.startJob("compile", name)
	jb.source(src)
	m, pres, err := s.parallelIR(name, src, jb)
	jb.finish(err)
	return m, pres, err
}

func (s *Session) parallelIR(name, src string, jb *jobBuilder) (*ir.Module, *parallel.Result, error) {
	key := memoKey(name, src)
	s.mu.Lock()
	e := s.memo[key]
	if e != nil && e.parallel != "" {
		text, pres := e.parallel, copyResult(e.parRes)
		s.mu.Unlock()
		s.memoLookup(jb, "parallel", true)
		m, err := ir.Parse(text)
		return m, pres, err
	}
	s.mu.Unlock()
	s.memoLookup(jb, "parallel", false)

	// Reuse the optimized prefix if it is already cached.
	m, err := s.optimizedIR(name, src, jb)
	if err != nil {
		return nil, nil, err
	}
	pres, err := s.parallelize(m, jb)
	if err != nil {
		return nil, nil, err
	}
	text := m.Print()
	s.mu.Lock()
	if s.memo[key] == nil {
		s.memo[key] = &memoEntry{}
	}
	s.memo[key].parallel = text
	s.memo[key].parRes = copyResult(pres)
	s.mu.Unlock()
	return m, copyResult(pres), nil
}

// copyResult snapshots a parallelizer result so cached and returned
// copies cannot alias.
func copyResult(r *parallel.Result) *parallel.Result {
	if r == nil {
		return nil
	}
	out := &parallel.Result{
		Parallelized: make(map[string]int, len(r.Parallelized)),
		Versioned:    r.Versioned,
		Rejected:     r.Rejected,
	}
	for k, v := range r.Parallelized {
		out.Parallelized[k] = v
	}
	return out
}

func (s *Session) count(name string, n int) {
	s.opts.Telemetry.Count(name, n)
}

// memoLookup records one prefix-memo probe on the telemetry counters,
// the metrics registry, and the job's flight record.
func (s *Session) memoLookup(jb *jobBuilder, prefix string, hit bool) {
	if hit {
		s.count("driver.memo.hits", 1)
		s.met.memoHits.Inc()
	} else {
		s.count("driver.memo.misses", 1)
		s.met.memoMisses.Inc()
	}
	jb.cacheLookup(prefix, hit)
}
