package driver

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/evlog"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// The session flight recorder: a bounded ring buffer of the last N
// pipeline jobs, kept cheap enough to leave on in production and served
// live by the debug server's /debug/jobs endpoint. A "job" is one
// public, user-meaningful unit of work — a memoized compile
// (OptimizedIR/ParallelIR), a decompilation, an interpreter execution,
// or a differential round trip — not the primitive stages inside it:
// stage timings, cache lookups, profile digests, and verdicts are
// attached to the enclosing job's record instead of producing nested
// entries.

// FlightRecordSchema identifies the /debug/jobs JSON layout.
const FlightRecordSchema = "splendid-flight-record/v1"

// StageTiming is one pipeline stage's wall time within a job. Stages
// may repeat (a round trip runs the frontend twice: input and
// recompiled C); order is execution order.
type StageTiming struct {
	Stage  string `json:"stage"`
	WallNS int64  `json:"wall_ns"`
}

// CacheLookup is one prefix-memo probe: which prefix was consulted
// ("optimized" or "parallel") and whether it hit.
type CacheLookup struct {
	Prefix string `json:"prefix"`
	Hit    bool   `json:"hit"`
}

// ProfileDigest condenses an interp.RunProfile to the figures worth
// keeping per job: region/fork counts, work and span totals, the
// work-weighted load balance, and total barrier wait.
type ProfileDigest struct {
	Regions       int     `json:"regions"`
	Forks         int64   `json:"forks"`
	WorkSteps     int64   `json:"work_steps"`
	SpanSteps     int64   `json:"span_steps"`
	LoadBalance   float64 `json:"load_balance,omitempty"`
	BarrierWaitNS int64   `json:"barrier_wait_ns,omitempty"`
}

func digestProfile(p *interp.RunProfile) *ProfileDigest {
	if p == nil {
		return nil
	}
	return &ProfileDigest{
		Regions:       len(p.Regions),
		Forks:         p.TotalForks,
		WorkSteps:     p.TotalWorkSteps,
		SpanSteps:     p.TotalSpanSteps,
		LoadBalance:   p.LoadBalance(),
		BarrierWaitNS: p.BarrierWaitNS(),
	}
}

// JobRecord is one completed pipeline job. Seq increases monotonically
// per session; the recorder keeps the most recent records only.
type JobRecord struct {
	Seq  int64  `json:"seq"`
	Kind string `json:"kind"` // compile | decompile | execute | roundtrip
	Name string `json:"name"`
	// Process is the record's provenance when it was ingested from
	// another process's recorder (the fleet coordinator tags worker shard
	// jobs "worker0", "worker1", ...); "" for jobs this session ran.
	Process string `json:"process,omitempty"`
	// SourceHash fingerprints the input source ("%016x" of ir.HashBytes)
	// so repeated jobs over the same program correlate across restarts.
	SourceHash  string `json:"source_hash,omitempty"`
	StartUnixNS int64  `json:"start_unix_ns"`
	WallNS      int64  `json:"wall_ns"`
	// Engine names the body engine ("tree" or "bytecode") of the job's
	// interpreter run; "" for jobs that never execute (pure compiles).
	Engine string        `json:"engine,omitempty"`
	Stages []StageTiming `json:"stages,omitempty"`
	Cache  []CacheLookup `json:"cache,omitempty"`
	// Profile is the parallel-region digest of the job's N-thread run
	// (round trips and profiled executions only).
	Profile *ProfileDigest `json:"profile,omitempty"`
	// RaceVerdict is "" when the checker did not run, else "clean" or
	// "conflicts".
	RaceVerdict string `json:"race_verdict,omitempty"`
	// Divergences lists round-trip divergence classes, one entry per
	// finding (e.g. ["opt", "roundtrip", "roundtrip"]).
	Divergences   []string `json:"divergences,omitempty"`
	ParallelLoops int      `json:"parallel_loops,omitempty"`
	Err           string   `json:"err,omitempty"`
}

// JobsSnapshot is the /debug/jobs response body: the retained records,
// oldest first. Recorded counts all jobs ever recorded, so readers can
// tell how much history the ring has dropped.
type JobsSnapshot struct {
	Schema   string      `json:"schema"`
	Capacity int         `json:"capacity"`
	Recorded int64       `json:"recorded"`
	Jobs     []JobRecord `json:"jobs"`
}

// FlightRecorder is the mutex-guarded ring buffer behind /debug/jobs.
// All methods are nil-safe, so a session with recording disabled hands
// out a nil recorder that snapshots as empty.
type FlightRecorder struct {
	mu   sync.Mutex
	seq  int64
	ring []JobRecord
	next int
	full bool
}

func newFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		return nil
	}
	return &FlightRecorder{ring: make([]JobRecord, capacity)}
}

// record appends jr, assigning its sequence number, evicting the oldest
// record once the ring is full.
func (fr *FlightRecorder) record(jr JobRecord) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.seq++
	jr.Seq = fr.seq
	fr.ring[fr.next] = jr
	fr.next++
	if fr.next == len(fr.ring) {
		fr.next = 0
		fr.full = true
	}
	fr.mu.Unlock()
}

// Ingest folds a record from another process's recorder into this
// ring. The record is re-sequenced locally (sequence numbers are
// per-recorder); callers set JobRecord.Process so /debug/jobs readers
// can tell whose work it was. Nil-safe.
func (fr *FlightRecorder) Ingest(jr JobRecord) { fr.record(jr) }

// Since returns the retained records with sequence numbers greater
// than seq, oldest first. Fleet workers use it to ship only the job
// records that are new since their previous response. Nil-safe.
func (fr *FlightRecorder) Since(seq int64) []JobRecord {
	var out []JobRecord
	for _, jr := range fr.Snapshot().Jobs {
		if jr.Seq > seq {
			out = append(out, jr)
		}
	}
	return out
}

// Snapshot copies the retained records, oldest first.
func (fr *FlightRecorder) Snapshot() JobsSnapshot {
	out := JobsSnapshot{Schema: FlightRecordSchema, Jobs: []JobRecord{}}
	if fr == nil {
		return out
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out.Capacity = len(fr.ring)
	out.Recorded = fr.seq
	if fr.full {
		out.Jobs = append(out.Jobs, fr.ring[fr.next:]...)
	}
	out.Jobs = append(out.Jobs, fr.ring[:fr.next]...)
	return out
}

// JobsJSON renders the snapshot, implementing debugserv.JobsSource.
// Nil-safe: a nil recorder serves an empty document, not an error.
func (fr *FlightRecorder) JobsJSON() ([]byte, error) {
	return json.MarshalIndent(fr.Snapshot(), "", "  ")
}

// jobBuilder accumulates one job's record while the job runs. It exists
// only when the session has a recorder or a metrics registry attached;
// a nil builder is the disabled path and every method is nil-safe, so
// instrumented code never branches on configuration.
type jobBuilder struct {
	s     *Session
	start time.Time
	rec   JobRecord
}

// startJob opens a job of the given kind, bumping the started counter.
// Returns nil (recording nothing) when the session observes nothing.
func (s *Session) startJob(kind, name string) *jobBuilder {
	if s.rec == nil && s.opts.Metrics == nil && s.ev == nil {
		return nil
	}
	s.met.started[kind].Inc()
	s.ev.Debug("job.start", evlog.F("kind", kind), evlog.F("name", name))
	jb := &jobBuilder{s: s, start: time.Now()}
	jb.rec = JobRecord{Kind: kind, Name: name, StartUnixNS: jb.start.UnixNano()}
	return jb
}

// active reports whether the job is being recorded (used to decide
// whether collecting a profile for the record is worth the cost).
func (jb *jobBuilder) active() bool { return jb != nil }

func (jb *jobBuilder) source(src string) {
	if jb == nil {
		return
	}
	jb.rec.SourceHash = fmt.Sprintf("%016x", ir.HashBytes(src))
}

func (jb *jobBuilder) engine(name string) {
	if jb == nil {
		return
	}
	jb.rec.Engine = name
}

func (jb *jobBuilder) stage(name string, d time.Duration) {
	if jb == nil {
		return
	}
	jb.rec.Stages = append(jb.rec.Stages, StageTiming{Stage: name, WallNS: d.Nanoseconds()})
}

func (jb *jobBuilder) cacheLookup(prefix string, hit bool) {
	if jb == nil {
		return
	}
	jb.rec.Cache = append(jb.rec.Cache, CacheLookup{Prefix: prefix, Hit: hit})
}

func (jb *jobBuilder) profile(p *interp.RunProfile) {
	if jb == nil || p == nil {
		return
	}
	jb.rec.Profile = digestProfile(p)
}

func (jb *jobBuilder) raceVerdict(rep *interp.RaceReport) {
	if jb == nil || rep == nil {
		return
	}
	if rep.Clean() {
		jb.rec.RaceVerdict = "clean"
	} else {
		jb.rec.RaceVerdict = "conflicts"
	}
}

func (jb *jobBuilder) divergences(ds []Divergence) {
	if jb == nil {
		return
	}
	for _, d := range ds {
		jb.rec.Divergences = append(jb.rec.Divergences, d.Class)
	}
}

func (jb *jobBuilder) parallelLoops(n int) {
	if jb == nil {
		return
	}
	jb.rec.ParallelLoops = n
}

// finish closes the job: wall time is stamped, the completed or failed
// counter bumps, and the record lands in the session's ring.
func (jb *jobBuilder) finish(err error) {
	if jb == nil {
		return
	}
	jb.rec.WallNS = time.Since(jb.start).Nanoseconds()
	if err != nil {
		jb.rec.Err = err.Error()
		jb.s.met.failed[jb.rec.Kind].Inc()
		jb.s.ev.Error("job.fail",
			evlog.F("kind", jb.rec.Kind), evlog.F("name", jb.rec.Name),
			evlog.Int("wall_ns", jb.rec.WallNS), evlog.F("err", jb.rec.Err))
	} else {
		jb.s.met.completed[jb.rec.Kind].Inc()
		jb.s.ev.Info("job.done",
			evlog.F("kind", jb.rec.Kind), evlog.F("name", jb.rec.Name),
			evlog.Int("wall_ns", jb.rec.WallNS))
	}
	jb.s.rec.record(jb.rec)
}

// ShardJob is the public handle on an in-flight fleet-shard job: the
// differential fleet (internal/difftest) wraps each shard sweep in one
// so /debug/jobs and the splendid_driver_jobs_* metrics show shards as
// first-class work items, with the divergence classes their findings
// carried. Nil-safe like the jobBuilder underneath it.
type ShardJob struct {
	jb *jobBuilder
}

// StartShardJob opens a "shard"-kind flight-recorder job. The round
// trips the shard runs still record as their own jobs; the shard job
// is the enclosing unit the fleet coordinator reasons about.
func (s *Session) StartShardJob(name string) *ShardJob {
	return &ShardJob{jb: s.startJob("shard", name)}
}

// Divergences attaches the divergence classes of the shard's findings.
func (j *ShardJob) Divergences(classes []string) {
	if j == nil || j.jb == nil {
		return
	}
	for _, c := range classes {
		j.jb.rec.Divergences = append(j.jb.rec.Divergences, c)
	}
}

// Finish closes the shard job's record.
func (j *ShardJob) Finish(err error) {
	if j == nil {
		return
	}
	j.jb.finish(err)
}

// sessionMetrics holds the session's metric handles. The maps are nil
// when no registry is attached; a nil-map lookup yields a nil handle
// whose methods are no-ops, so instrumentation sites never branch.
type sessionMetrics struct {
	started, completed, failed map[string]*metrics.Counter
	stage                      map[string]*metrics.Histogram
	memoHits, memoMisses       *metrics.Counter
}

// jobKinds and stageNames are the fixed label sets the session
// pre-registers, so scrapes show every series from the first request.
// "shard" is the differential fleet's unit of work: one journaled seed
// range swept by a worker, enclosing its round trips.
var jobKinds = []string{"compile", "decompile", "execute", "roundtrip", "shard"}
var stageNames = []string{"frontend", "optimize", "parallelize", "decompile"}

func newSessionMetrics(r *metrics.Registry) sessionMetrics {
	if r == nil {
		return sessionMetrics{}
	}
	sm := sessionMetrics{
		started:   map[string]*metrics.Counter{},
		completed: map[string]*metrics.Counter{},
		failed:    map[string]*metrics.Counter{},
		stage:     map[string]*metrics.Histogram{},
		memoHits: r.Counter("splendid_driver_memo_hits_total",
			"prefix-memo lookups served from cached IR text"),
		memoMisses: r.Counter("splendid_driver_memo_misses_total",
			"prefix-memo lookups that compiled from scratch"),
	}
	for _, k := range jobKinds {
		sm.started[k] = r.Counter("splendid_driver_jobs_started_total",
			"pipeline jobs started", metrics.L("kind", k))
		sm.completed[k] = r.Counter("splendid_driver_jobs_completed_total",
			"pipeline jobs completed without error", metrics.L("kind", k))
		sm.failed[k] = r.Counter("splendid_driver_jobs_failed_total",
			"pipeline jobs that returned an error", metrics.L("kind", k))
	}
	for _, st := range stageNames {
		sm.stage[st] = r.Histogram("splendid_driver_stage_seconds",
			"wall time of one pipeline stage execution",
			metrics.DurationBuckets, metrics.L("stage", st))
	}
	return sm
}

// stageSpan times one stage execution into the session's histogram and
// (when a job is recording) the job's stage list. The zero value is the
// disabled path: no clock read, no allocation.
type stageSpan struct {
	s     *Session
	jb    *jobBuilder
	stage string
	t0    time.Time
}

func (s *Session) startStage(jb *jobBuilder, stage string) stageSpan {
	if s.met.stage == nil && jb == nil {
		return stageSpan{}
	}
	return stageSpan{s: s, jb: jb, stage: stage, t0: time.Now()}
}

func (sp stageSpan) end() {
	if sp.s == nil {
		return
	}
	d := time.Since(sp.t0)
	sp.s.met.stage[sp.stage].Observe(d.Seconds())
	sp.jb.stage(sp.stage, d)
}
