package driver

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/splendid"
)

// RoundTripOptions configures one differential round trip.
type RoundTripOptions struct {
	// Entries are run in order on one machine per stage (shared globals
	// carry state between them, e.g. init_data → kernel → check). Empty
	// means ["main"].
	Entries []string
	// Threads is the team size of the parallel runs (<=0 means 8).
	Threads int
	// Fuel bounds instructions per run as a backstop against generator
	// bugs (<=0 means 16M). A reference run that exhausts fuel marks the
	// result FuelExhausted instead of reporting divergences.
	Fuel int64
}

// Outcome is one execution's observable behaviour, normalized for
// cross-module comparison: printed output, trap *category* (messages
// embed register names that legitimately differ between a module and
// its recompiled twin), and a digest per global. Globals are digested
// only for trap-free runs — a trap leaves partial state whose exact
// shape optimization may legally change.
type Outcome struct {
	Output    string
	Trapped   bool
	TrapKind  interp.TrapKind
	TrapEntry string
	// Err records a non-trap failure (e.g. a missing entry function in
	// the recompiled module — a recompilability bug).
	Err     string
	Globals map[string]uint64
}

// Diff reports the observable differences of got against the reference
// outcome ref, as human-readable strings. Empty means equivalent.
func (ref *Outcome) Diff(got *Outcome) []string {
	var d []string
	if ref.Err != got.Err {
		d = append(d, fmt.Sprintf("error: %q vs %q", ref.Err, got.Err))
		return d
	}
	if ref.Trapped != got.Trapped {
		d = append(d, fmt.Sprintf("trapped: %v (%s @%s) vs %v (%s @%s)",
			ref.Trapped, ref.TrapKind, ref.TrapEntry, got.Trapped, got.TrapKind, got.TrapEntry))
		return d
	}
	if ref.Trapped {
		// Both trapped: the category and the entry it happened in must
		// agree; partial output and state are not compared.
		if ref.TrapKind != got.TrapKind || ref.TrapEntry != got.TrapEntry {
			d = append(d, fmt.Sprintf("trap: %s @%s vs %s @%s",
				ref.TrapKind, ref.TrapEntry, got.TrapKind, got.TrapEntry))
		}
		return d
	}
	if ref.Output != got.Output {
		d = append(d, fmt.Sprintf("output: %q vs %q", clip(ref.Output), clip(got.Output)))
	}
	names := make([]string, 0, len(ref.Globals))
	for g := range ref.Globals {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		hg, ok := got.Globals[g]
		if !ok {
			d = append(d, fmt.Sprintf("global @%s missing", g))
			continue
		}
		if hg != ref.Globals[g] {
			d = append(d, fmt.Sprintf("global @%s state differs (digest %016x vs %016x)", g, ref.Globals[g], hg))
		}
	}
	return d
}

func clip(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}

// RunForOutcome executes entries in order on one machine and normalizes
// the result. globals names the objects to digest (typically the
// reference module's globals, so every stage digests the same set).
func RunForOutcome(m *ir.Module, entries, globals []string, mopts interp.Options) (*Outcome, *interp.RaceReport) {
	out, mach := runForOutcome(m, entries, globals, mopts)
	return out, mach.Races()
}

// runForOutcome is RunForOutcome returning the machine itself, so
// callers can also read its profile.
func runForOutcome(m *ir.Module, entries, globals []string, mopts interp.Options) (*Outcome, *interp.Machine) {
	mach := interp.NewMachine(m, mopts)
	out := &Outcome{Globals: map[string]uint64{}}
	for _, e := range entries {
		if _, err := mach.Run(e); err != nil {
			if kind, ok := interp.TrapKindOf(err); ok {
				out.Trapped, out.TrapKind, out.TrapEntry = true, kind, e
			} else {
				out.Err = err.Error()
			}
			break
		}
	}
	out.Output = mach.Output()
	if !out.Trapped && out.Err == "" {
		for _, g := range globals {
			if obj := mach.GlobalMem(g); obj != nil {
				out.Globals[g] = DigestCells(obj.Cells)
			}
		}
	}
	return out, mach
}

// DigestCells hashes a memory object's cells by bit pattern, so two
// runs agree exactly when every cell is bitwise identical.
func DigestCells(cells []interp.Value) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	for _, c := range cells {
		buf[0] = byte(c.K)
		bits := uint64(c.I)
		if c.K == interp.KFloat {
			bits = math.Float64bits(c.F)
		}
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Divergence is one oracle finding: a stage of the round trip whose
// observable behaviour departed from the sequential reference.
type Divergence struct {
	// Class names the invariant that broke: "opt" (optimized module at 1
	// thread vs reference), "parallel" (optimized module at N threads),
	// "bytecode" (optimized module on the register VM, 1 or N threads —
	// the lowering itself under test), "roundtrip" (recompiled
	// decompilation, 1 or N threads), "recompile" (the emitted C failed
	// the frontend), "decompile" (the decompiler itself failed), "races"
	// (the dynamic checker found conflicts or contradicted a static
	// DOALL verdict).
	Class  string
	Detail string
}

func (d Divergence) String() string { return d.Class + ": " + d.Detail }

// RoundTripResult carries every artifact and outcome of one round trip,
// enough for a caller to classify, report, and reduce a failure.
type RoundTripResult struct {
	Source string // the input C program
	RefIR  string // unoptimized IR (printed)
	OptIR  string // optimized+parallelized IR (printed) — the reducer's input
	C      string // decompiled OpenMP C ("" when decompilation failed)

	ParallelizedLoops int // loops the parallelizer outlined

	Ref  *Outcome // reference: unoptimized IR, 1 thread
	Opt1 *Outcome // optimized+parallelized IR, 1 thread
	OptN *Outcome // optimized+parallelized IR, N threads
	Byt1 *Outcome // optimized IR on the bytecode VM, 1 thread
	BytN *Outcome // optimized IR on the bytecode VM, N threads
	Rec1 *Outcome // recompiled decompiled C, 1 thread (nil if recompile failed)
	RecN *Outcome // recompiled decompiled C, N threads

	RacesClean     bool
	Contradictions []string

	// FuelExhausted: the reference run hit the fuel backstop, so the
	// program is too expensive to compare and divergences are not
	// computed (the generator should avoid producing such programs).
	FuelExhausted bool

	Divergences []Divergence
}

// Failed reports whether the oracle found any divergence.
func (r *RoundTripResult) Failed() bool { return len(r.Divergences) > 0 }

// RoundTrip drives src through the full SPLENDID pipeline — frontend →
// O2 → parallelize → decompile → re-frontend the emitted C — executing
// the module after each trust boundary and comparing every execution
// against the unoptimized sequential reference. Any observable
// difference (output, trap category, global state, race verdict) or a
// re-frontend rejection lands in Divergences; err is reserved for
// infrastructure failures (the *input* source not compiling).
//
// The stages are invoked directly rather than through the session's
// prefix memo: a fuzzing loop feeds thousands of distinct sources, and
// memoizing each would grow the cache without any reuse.
func (s *Session) RoundTrip(name, src string, opts RoundTripOptions) (*RoundTripResult, error) {
	jb := s.startJob("roundtrip", name)
	jb.source(src)
	res, err := s.roundTrip(name, src, opts, jb)
	if res != nil {
		jb.parallelLoops(res.ParallelizedLoops)
		jb.divergences(res.Divergences)
	}
	jb.finish(err)
	return res, err
}

func (s *Session) roundTrip(name, src string, opts RoundTripOptions, jb *jobBuilder) (*RoundTripResult, error) {
	entries := opts.Entries
	if len(entries) == 0 {
		entries = []string{"main"}
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = 8
	}
	fuel := opts.Fuel
	if fuel <= 0 {
		fuel = 16_000_000
	}

	ref, err := s.frontend(src, name, jb)
	if err != nil {
		return nil, fmt.Errorf("roundtrip frontend: %w", err)
	}
	res := &RoundTripResult{Source: src, RefIR: ref.Print(), RacesClean: true}
	var globals []string
	for _, g := range ref.Globals {
		globals = append(globals, g.Nam)
	}

	res.Ref, _ = RunForOutcome(ref, entries, globals, interp.Options{NumThreads: 1, Fuel: fuel})
	if res.Ref.Trapped && res.Ref.TrapKind == interp.TrapFuel {
		res.FuelExhausted = true
		return res, nil
	}

	// Optimize+parallelize a private clone so RefIR stays the pristine
	// frontend output.
	opt, err := ir.Parse(res.RefIR)
	if err != nil {
		return nil, fmt.Errorf("roundtrip reparse: %w", err)
	}
	if err := s.optimize(opt, jb); err != nil {
		return nil, fmt.Errorf("roundtrip optimize: %w", err)
	}
	pres, err := s.parallelize(opt, jb)
	if err != nil {
		return nil, fmt.Errorf("roundtrip parallelize: %w", err)
	}
	for _, n := range pres.Parallelized {
		res.ParallelizedLoops += n
	}
	res.OptIR = opt.Print()

	res.Opt1, _ = RunForOutcome(opt, entries, globals, interp.Options{NumThreads: 1, Fuel: fuel})
	// The N-thread run also collects a parallel-region profile when the
	// job is being flight-recorded, so /debug/jobs shows each round
	// trip's runtime shape alongside its verdicts.
	outN, machN := runForOutcome(opt, entries, globals, interp.Options{
		NumThreads: threads, Fuel: fuel, CheckRaces: true,
		Profile: jb.active(), Metrics: s.opts.Metrics,
	})
	races := machN.Races()
	res.OptN = outN
	res.RacesClean = races.Clean()
	res.Contradictions = races.CrossCheck(opt)
	jb.profile(machN.Profile())
	jb.raceVerdict(races)

	diverge := func(class string, diffs []string) {
		for _, d := range diffs {
			res.Divergences = append(res.Divergences, Divergence{Class: class, Detail: d})
		}
	}
	diverge("opt", res.Ref.Diff(res.Opt1))
	diverge("parallel", res.Ref.Diff(res.OptN))

	// The bytecode VM executes the same optimized module as an extra
	// trust boundary: its lowering (register allocation, phi moves,
	// superinstruction fusion) must be observationally invisible.
	byt, err := EngineFor("bytecode")
	if err != nil {
		return nil, err
	}
	res.Byt1, _ = RunForOutcome(opt, entries, globals, interp.Options{NumThreads: 1, Fuel: fuel, Body: byt})
	res.BytN, _ = RunForOutcome(opt, entries, globals, interp.Options{NumThreads: threads, Fuel: fuel, Body: byt})
	diverge("bytecode", res.Ref.Diff(res.Byt1))
	diverge("bytecode", res.Ref.Diff(res.BytN))
	if !res.RacesClean {
		diverge("races", []string{fmt.Sprintf("dynamic checker found conflicts at %d threads", threads)})
	}
	for _, c := range res.Contradictions {
		diverge("races", []string{c})
	}

	dec, err := s.decompile(opt, splendid.Full(), jb)
	if err != nil {
		diverge("decompile", []string{err.Error()})
		return res, nil
	}
	res.C = dec.C
	rec, err := s.frontend(dec.C, name+".rec", jb)
	if err != nil {
		// The paper's recompilability claim: emitted C the frontend
		// rejects is a finding, not an infrastructure error.
		diverge("recompile", []string{err.Error()})
		return res, nil
	}
	if err := s.optimize(rec, jb); err != nil {
		diverge("recompile", []string{fmt.Sprintf("optimizing recompiled module: %v", err)})
		return res, nil
	}
	res.Rec1, _ = RunForOutcome(rec, entries, globals, interp.Options{NumThreads: 1, Fuel: fuel})
	res.RecN, _ = RunForOutcome(rec, entries, globals, interp.Options{NumThreads: threads, Fuel: fuel})
	diverge("roundtrip", res.Ref.Diff(res.Rec1))
	diverge("roundtrip", res.Ref.Diff(res.RecN))
	return res, nil
}
