package driver_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/polybench"
	"repro/internal/splendid"
)

// suiteOnce runs the full pipeline (frontend → O2 → parallelize →
// decompile) over every PolyBench benchmark through one session. With
// concurrent=true the benchmarks are submitted to the session from
// separate goroutines, so module-level barrier stages of different
// benchmarks overlap even when each module has only a handful of
// functions.
func suiteOnce(b *testing.B, s *driver.Session, concurrent bool) {
	b.Helper()
	run := func(bench *polybench.Benchmark) {
		m, _, err := s.ParallelIR(bench.Name, bench.Seq)
		if err != nil {
			b.Error(err)
			return
		}
		if _, err := s.Decompile(m, splendid.Full()); err != nil {
			b.Error(err)
		}
	}
	if !concurrent {
		for _, bench := range polybench.All() {
			run(bench)
		}
		return
	}
	var wg sync.WaitGroup
	for _, bench := range polybench.All() {
		bench := bench
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(bench)
		}()
	}
	wg.Wait()
}

// BenchmarkDriverPipeline measures the driver across its three operating
// points — serial cold (fresh session per run, Jobs=1), parallel cold
// (fresh session, Jobs=NumCPU, benchmarks submitted concurrently), and
// warm (session reused, so the O2+parallelize prefix comes from the
// memo) — and writes the comparison to BENCH_driver.json at the repo
// root. The timed b.N loop is the serial cold baseline; the other two
// are measured alongside and attached as custom metrics.
func BenchmarkDriverPipeline(b *testing.B) {
	runs := func(mk func() *driver.Session, concurrent bool, reuse bool) time.Duration {
		var s *driver.Session
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if s == nil || !reuse {
				s = mk()
			}
			if reuse && i == 0 {
				// Warm-up fill outside nothing: the first iteration pays
				// the misses; with b.N==1 we fill then measure a hit pass.
				suiteOnce(b, s, concurrent)
				start = time.Now()
			}
			suiteOnce(b, s, concurrent)
		}
		return time.Since(start)
	}

	serial := func() *driver.Session { return driver.New(driver.Options{Jobs: 1}) }
	parallel := func() *driver.Session { return driver.New(driver.Options{}) }

	b.ResetTimer()
	serialCold := runs(serial, false, false)
	b.StopTimer()
	parallelCold := runs(parallel, true, false)
	warm := runs(serial, false, true)

	n := int64(b.N)
	report := struct {
		Date           string  `json:"date"`
		GoMaxProcs     int     `json:"gomaxprocs"`
		Benchmarks     int     `json:"polybench_kernels"`
		Iterations     int64   `json:"iterations"`
		SerialColdNS   int64   `json:"serial_cold_ns_per_suite"`
		ParallelColdNS int64   `json:"parallel_cold_ns_per_suite"`
		WarmNS         int64   `json:"warm_ns_per_suite"`
		ParallelSpeed  float64 `json:"parallel_speedup_vs_serial_cold"`
		WarmSpeed      float64 `json:"warm_speedup_vs_serial_cold"`
	}{
		Date:           time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Benchmarks:     len(polybench.All()),
		Iterations:     n,
		SerialColdNS:   serialCold.Nanoseconds() / n,
		ParallelColdNS: parallelCold.Nanoseconds() / n,
		WarmNS:         warm.Nanoseconds() / n,
	}
	report.ParallelSpeed = float64(report.SerialColdNS) / float64(report.ParallelColdNS)
	report.WarmSpeed = float64(report.SerialColdNS) / float64(report.WarmNS)

	b.ReportMetric(float64(report.SerialColdNS)/1e6, "ms-serial-cold")
	b.ReportMetric(float64(report.ParallelColdNS)/1e6, "ms-parallel-cold")
	b.ReportMetric(float64(report.WarmNS)/1e6, "ms-warm")

	j, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_driver.json", append(j, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
