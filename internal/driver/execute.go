package driver

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/vm"
)

// ExecOptions configures one interpreter run launched through the
// session. The zero value runs @main single-threaded with no
// observability.
type ExecOptions struct {
	// Entry is the function to run; "" means "main".
	Entry string
	// Args are the entry function's arguments.
	Args []interp.Value
	// NumThreads is the OpenMP team size (<=0 means 1). Callers exposing
	// this as a flag should validate user input first (see cmd/irrun).
	NumThreads int
	// Fuel bounds instructions per worker (0 = unbounded).
	Fuel int64
	// Profile enables the parallel-region profiler.
	Profile bool
	// CheckRaces enables the dynamic DOALL conflict checker and the
	// static-verdict cross-check.
	CheckRaces bool
	// Engine selects the body engine: "" or "tree" for the reference
	// tree-walker, "bytecode" for the lowered register VM. Both produce
	// bitwise-identical observable behaviour; bytecode is faster.
	Engine string
}

// EngineFor maps an engine name to a body engine for interp.Options.
// "" and "tree" return nil (the machine's default tree-walker);
// "bytecode" returns a fresh register-VM engine.
func EngineFor(name string) (interp.BodyEngine, error) {
	switch name {
	case "", "tree":
		return nil, nil
	case "bytecode":
		return vm.New(), nil
	}
	return nil, fmt.Errorf("unknown engine %q (want tree or bytecode)", name)
}

// EngineNames lists the selectable body engines, sorted — the build
// metadata scrapes and CLIs report this set.
func EngineNames() []string { return []string{"bytecode", "tree"} }

// ExecResult is the outcome of one Execute call.
type ExecResult struct {
	// Ret is the entry function's return value.
	Ret interp.Value
	// Output is everything the program printed.
	Output string
	// Steps is total instructions executed (work); SimSteps the simulated
	// critical path (span) — their ratio at different thread counts is
	// the deterministic speedup measure.
	Steps, SimSteps int64
	// Profile is the runtime profile (nil unless ExecOptions.Profile).
	Profile *interp.RunProfile
	// Races is the conflict report (nil unless ExecOptions.CheckRaces).
	Races *interp.RaceReport
	// Contradictions lists conflicts that landed inside statically
	// accepted DOALL regions — dynamic evidence against the
	// parallelizer's verdict. Empty when the verdicts agree.
	Contradictions []string
}

// Execute runs a compiled module in the interpreter under the session's
// execution policy: the session's telemetry context flows into the
// machine, so parallel-region and per-thread spans land on the same
// timeline (and in the same Chrome trace) as the compile stages that
// produced the module. The module is not modified.
func (s *Session) Execute(m *ir.Module, opts ExecOptions) (*ExecResult, error) {
	entry := opts.Entry
	if entry == "" {
		entry = "main"
	}
	jb := s.startJob("execute", entry)
	res, err := s.execute(m, entry, opts, jb)
	jb.finish(err)
	return res, err
}

func (s *Session) execute(m *ir.Module, entry string, opts ExecOptions, jb *jobBuilder) (*ExecResult, error) {
	sp := s.opts.Telemetry.StartStage("execute")
	defer sp.End()

	body, err := EngineFor(opts.Engine)
	if err != nil {
		return nil, err
	}
	mach := interp.NewMachine(m, interp.Options{
		NumThreads: opts.NumThreads,
		Fuel:       opts.Fuel,
		Profile:    opts.Profile,
		CheckRaces: opts.CheckRaces,
		Telemetry:  s.opts.Telemetry,
		Metrics:    s.opts.Metrics,
		Body:       body,
	})
	jb.engine(mach.EngineName())
	ret, err := mach.Run(entry, opts.Args...)
	if err != nil {
		return nil, fmt.Errorf("execute @%s: %w", entry, err)
	}
	res := &ExecResult{
		Ret:      ret,
		Output:   mach.Output(),
		Steps:    mach.Steps(),
		SimSteps: mach.SimSteps(),
		Profile:  mach.Profile(),
		Races:    mach.Races(),
	}
	res.Contradictions = res.Races.CrossCheck(m)
	jb.profile(res.Profile)
	jb.raceVerdict(res.Races)
	s.count("driver.executions", 1)
	return res, nil
}
