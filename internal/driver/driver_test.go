// External test package: driver tests drive the real PolyBench suite,
// which itself imports the driver, so the tests must sit outside the
// package to avoid a cycle.
package driver_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/driver"
	"repro/internal/polybench"
	"repro/internal/splendid"
	"repro/internal/telemetry"
)

// TestDeterminismGolden is the worker-count determinism golden test: every
// PolyBench kernel decompiled with -j1 and -jN must produce byte-identical
// C output and identical Stats.
func TestDeterminismGolden(t *testing.T) {
	serial := driver.New(driver.Options{Jobs: 1})
	parallel := driver.New(driver.Options{Jobs: 8})
	for _, b := range polybench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m1, _, err := serial.ParallelIR(b.Name, b.Seq)
			if err != nil {
				t.Fatalf("serial pipeline: %v", err)
			}
			m2, _, err := parallel.ParallelIR(b.Name, b.Seq)
			if err != nil {
				t.Fatalf("parallel pipeline: %v", err)
			}
			if ir1, ir2 := m1.Print(), m2.Print(); ir1 != ir2 {
				t.Fatalf("-j1 and -j8 produced different parallel IR:\n--- j1 ---\n%s\n--- j8 ---\n%s", ir1, ir2)
			}
			r1, err := serial.Decompile(m1, splendid.Full())
			if err != nil {
				t.Fatalf("serial decompile: %v", err)
			}
			r2, err := parallel.Decompile(m2, splendid.Full())
			if err != nil {
				t.Fatalf("parallel decompile: %v", err)
			}
			if r1.C != r2.C {
				t.Fatalf("-j1 and -j8 produced different C:\n--- j1 ---\n%s\n--- j8 ---\n%s", r1.C, r2.C)
			}
			if !reflect.DeepEqual(r1.Stats, r2.Stats) {
				t.Fatalf("-j1 and -j8 produced different stats:\nj1: %+v\nj8: %+v", r1.Stats, r2.Stats)
			}
		})
	}
}

// TestVerifyEachPolyBench runs the whole pipeline over the suite with
// verification between stages and after every pass; the standard stages
// must never produce invalid IR.
func TestVerifyEachPolyBench(t *testing.T) {
	s := driver.New(driver.Options{VerifyEach: true})
	for _, b := range polybench.All() {
		m, _, err := s.ParallelIR(b.Name, b.Seq)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if _, err := s.Decompile(m, splendid.Full()); err != nil {
			t.Fatalf("%s: decompile: %v", b.Name, err)
		}
	}
}

// TestMemoizedPrefix checks the recompile path: a second ParallelIR call
// for the same (name, source) must come from the memo, produce identical
// IR, and hand out a module isolated from the cache.
func TestMemoizedPrefix(t *testing.T) {
	tc := telemetry.New()
	s := driver.New(driver.Options{Jobs: 1, Telemetry: tc})
	b := polybench.All()[0]

	m1, p1, err := s.ParallelIR(b.Name, b.Seq)
	if err != nil {
		t.Fatal(err)
	}
	m2, p2, err := s.ParallelIR(b.Name, b.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Print() != m2.Print() {
		t.Fatal("memoized recompile produced different IR")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("memoized recompile produced different results: %+v vs %+v", p1, p2)
	}
	if tc.Counter("driver.memo.hits") == 0 {
		t.Fatal("second ParallelIR call did not hit the memo")
	}

	// Mutating a returned module must not poison later memo hits.
	m2.Funcs = nil
	m3, _, err := s.ParallelIR(b.Name, b.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Print() != m1.Print() {
		t.Fatal("cache was corrupted by mutating a returned module")
	}

	// OptimizedIR of the same source shares the memo entry but caches the
	// pre-parallelize prefix separately.
	o1, err := s.OptimizedIR(b.Name, b.Seq)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := s.OptimizedIR(b.Name, b.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Print() != o2.Print() {
		t.Fatal("memoized OptimizedIR produced different IR")
	}
}

// TestConcurrentSessionUse submits every benchmark to one session from
// concurrent goroutines — the driver's documented concurrency contract —
// and checks each result matches a serial reference session.
func TestConcurrentSessionUse(t *testing.T) {
	ref := driver.New(driver.Options{Jobs: 1})
	s := driver.New(driver.Options{})
	var wg sync.WaitGroup
	errs := make(chan error, len(polybench.All()))
	for _, b := range polybench.All() {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, _, err := s.ParallelIR(b.Name, b.Seq)
			if err != nil {
				errs <- err
				return
			}
			want, _, err := ref.ParallelIR(b.Name, b.Seq)
			if err != nil {
				errs <- err
				return
			}
			if m.Print() != want.Print() {
				t.Errorf("%s: concurrent session result differs from serial reference", b.Name)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDecompileVariant covers the variant dispatch the splendid CLI uses.
func TestDecompileVariant(t *testing.T) {
	s := driver.New(driver.Options{Jobs: 1})
	b := polybench.All()[0]
	m, _, err := s.ParallelIR(b.Name, b.Seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"full", "portable", "v1", "cbackend", "rellic", "ghidra"} {
		text, stats, err := s.DecompileVariant(m, v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if text == "" {
			t.Fatalf("%s: empty output", v)
		}
		splendidVariant := v == "full" || v == "portable" || v == "v1"
		if splendidVariant != (stats != nil) {
			t.Fatalf("%s: stats presence wrong (got %v)", v, stats)
		}
	}
	if _, _, err := s.DecompileVariant(m, "nope"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

// TestAnalysisCacheWin checks the session's analysis manager actually
// serves cached analyses during an O2+parallelize pipeline.
func TestAnalysisCacheWin(t *testing.T) {
	s := driver.New(driver.Options{Jobs: 1})
	b := polybench.All()[0]
	if _, _, err := s.ParallelIR(b.Name, b.Seq); err != nil {
		t.Fatal(err)
	}
	st := s.AnalysisStats()
	if st.Hits == 0 {
		t.Fatalf("analysis cache never hit (misses=%d)", st.Misses)
	}
}

// execSource is a minimal parallelizable kernel for Execute tests.
const execSource = `
double A[1000];

void kernel() {
  for (long i = 0; i < 1000; i++) {
    A[i] = i * 2.0;
  }
}
`

// TestExecuteThreadsTelemetry runs a compiled kernel through
// Session.Execute with full observability: compile spans and runtime
// region/thread events must land in the same telemetry context, the
// profile must describe the parallel region, and the statically accepted
// DOALL must run without conflicts or contradictions.
func TestExecuteThreadsTelemetry(t *testing.T) {
	tc := telemetry.New()
	s := driver.New(driver.Options{Jobs: 1, Telemetry: tc})
	m, pres, err := s.ParallelIR("exec-kernel", execSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Parallelized) == 0 {
		t.Fatal("kernel did not parallelize; Execute test needs a parallel region")
	}
	res, err := s.Execute(m, driver.ExecOptions{
		Entry: "kernel", NumThreads: 4, Profile: true, CheckRaces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps <= 0 || res.SimSteps <= 0 || res.SimSteps >= res.Steps {
		t.Errorf("steps/span = %d/%d, want span in (0, steps)", res.Steps, res.SimSteps)
	}
	if res.Profile == nil || len(res.Profile.Regions) == 0 {
		t.Fatalf("profile = %+v, want at least one region", res.Profile)
	}
	r := res.Profile.Regions[0]
	if r.Microtask != "kernel.parallel_region" {
		t.Errorf("microtask = %q, want kernel.parallel_region", r.Microtask)
	}
	var iters int64
	for _, th := range r.Threads {
		iters += th.Iterations
	}
	if iters != 1000 {
		t.Errorf("iterations = %d, want 1000", iters)
	}
	if !res.Races.Clean() {
		t.Errorf("statically accepted DOALL raced: %+v", res.Races.Conflicts)
	}
	if len(res.Contradictions) != 0 {
		t.Errorf("contradictions = %v, want none", res.Contradictions)
	}

	// Telemetry: the execute stage span plus runtime region/thread events
	// share the compile timeline.
	var haveExec, haveRegion, haveThread bool
	for _, e := range tc.Events() {
		switch {
		case e.Cat == telemetry.CatStage && e.Name == "execute":
			haveExec = true
		case e.Cat == telemetry.CatRegion:
			haveRegion = true
		case e.Cat == telemetry.CatThread:
			haveThread = true
		}
	}
	if !haveExec || !haveRegion || !haveThread {
		t.Errorf("telemetry missing spans: execute=%v region=%v thread=%v",
			haveExec, haveRegion, haveThread)
	}
}

// TestExecuteDefaults covers the zero-value path: default entry,
// sequential, observability off.
func TestExecuteDefaults(t *testing.T) {
	s := driver.New(driver.Options{Jobs: 1})
	m, err := s.Frontend(`
long main() {
  return 41 + 1;
}
`, "exec-main")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Optimize(m); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(m, driver.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.I != 42 {
		t.Errorf("main = %d, want 42", res.Ret.I)
	}
	if res.Profile != nil || res.Races != nil || len(res.Contradictions) != 0 {
		t.Errorf("observability fields set without being requested: %+v", res)
	}
	if _, err := s.Execute(m, driver.ExecOptions{Entry: "nosuch"}); err == nil {
		t.Error("unknown entry accepted")
	}
}
