package ir

import (
	"fmt"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// globals, function parameters, functions, and instructions themselves.
type Value interface {
	// Type returns the type of the value.
	Type() Type
	// Ident returns the operand spelling, e.g. "%iv", "@A", "42", "3.5".
	Ident() string
}

// ConstInt is an integer constant of a specific integer type.
type ConstInt struct {
	Typ *BasicType
	V   int64
}

// IntConst returns an integer constant of type t.
func IntConst(t *BasicType, v int64) *ConstInt { return &ConstInt{Typ: t, V: v} }

// I64Const returns an i64 constant.
func I64Const(v int64) *ConstInt { return &ConstInt{Typ: I64, V: v} }

// I32Const returns an i32 constant.
func I32Const(v int64) *ConstInt { return &ConstInt{Typ: I32, V: v} }

// BoolConst returns an i1 constant.
func BoolConst(b bool) *ConstInt {
	if b {
		return &ConstInt{Typ: I1, V: 1}
	}
	return &ConstInt{Typ: I1, V: 0}
}

// Type returns the constant's type.
func (c *ConstInt) Type() Type { return c.Typ }

// Ident returns the decimal spelling of the constant.
func (c *ConstInt) Ident() string { return strconv.FormatInt(c.V, 10) }

// ConstFloat is a floating-point constant.
type ConstFloat struct {
	Typ *BasicType
	V   float64
}

// F64Const returns a double constant.
func F64Const(v float64) *ConstFloat { return &ConstFloat{Typ: F64, V: v} }

// Type returns the constant's type.
func (c *ConstFloat) Type() Type { return c.Typ }

// Ident returns the constant formatted so that it round-trips via ParseFloat.
func (c *ConstFloat) Ident() string {
	s := strconv.FormatFloat(c.V, 'g', -1, 64)
	// Ensure the token is recognizably a float when reparsed.
	if !containsAny(s, ".eE") && !containsAny(s, "iInN") {
		s += ".0"
	}
	return s
}

func containsAny(s, chars string) bool {
	for i := 0; i < len(s); i++ {
		for j := 0; j < len(chars); j++ {
			if s[i] == chars[j] {
				return true
			}
		}
	}
	return false
}

// ConstNull is a null pointer constant of a specific pointer type.
type ConstNull struct {
	Typ *PtrType
}

// Null returns the null constant of pointer type t.
func Null(t *PtrType) *ConstNull { return &ConstNull{Typ: t} }

// Type returns the null constant's pointer type.
func (c *ConstNull) Type() Type { return c.Typ }

// Ident returns "null".
func (c *ConstNull) Ident() string { return "null" }

// ConstUndef is an undefined value of a given type, used when a value is
// needed syntactically but is never observed.
type ConstUndef struct {
	Typ Type
}

// Undef returns an undef constant of type t.
func Undef(t Type) *ConstUndef { return &ConstUndef{Typ: t} }

// Type returns the undef's type.
func (c *ConstUndef) Type() Type { return c.Typ }

// Ident returns "undef".
func (c *ConstUndef) Ident() string { return "undef" }

// Param is a formal function parameter.
type Param struct {
	Nam    string
	Typ    Type
	Parent *Function
	// SourceName is the variable name from the original source, when known
	// (attached by the frontend, used by the decompiler's variable
	// generation).
	SourceName string
}

// Type returns the parameter's type.
func (p *Param) Type() Type { return p.Typ }

// Ident returns "%name".
func (p *Param) Ident() string { return "%" + p.Nam }

// Name returns the bare parameter name.
func (p *Param) Name() string { return p.Nam }

// Global is a module-level variable. Its value is a pointer to Elem.
type Global struct {
	Nam  string
	Elem Type
	// Init holds a scalar initializer when present; aggregate globals are
	// zero-initialized.
	Init Value
	// Constant marks read-only globals.
	Constant bool
}

// Type returns the pointer-to-element type of the global.
func (g *Global) Type() Type { return Ptr(g.Elem) }

// Ident returns "@name".
func (g *Global) Ident() string { return "@" + g.Nam }

// Name returns the bare global name.
func (g *Global) Name() string { return g.Nam }

// IsConstant reports whether v is a constant operand (int, float, null,
// undef, global address, or function address).
func IsConstant(v Value) bool {
	switch v.(type) {
	case *ConstInt, *ConstFloat, *ConstNull, *ConstUndef, *Global, *Function:
		return true
	}
	return false
}

// ValueString renders "type ident" for diagnostics.
func ValueString(v Value) string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s %s", v.Type(), v.Ident())
}
