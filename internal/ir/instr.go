package ir

import (
	"fmt"
	"strings"
)

// Op enumerates instruction opcodes.
type Op int

// Instruction opcodes. The set mirrors the LLVM instructions the SPLENDID
// pipeline operates on.
const (
	OpInvalid Op = iota

	// Memory.
	OpAlloca // %p = alloca T [, n]
	OpLoad   // %v = load T, T* %p
	OpStore  // store T %v, T* %p
	OpGEP    // %q = getelementptr T, T* %p, idx...

	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpAShr

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Comparisons.
	OpICmp
	OpFCmp

	// Conversions.
	OpSExt
	OpZExt
	OpTrunc
	OpSIToFP
	OpFPToSI
	OpFPExt
	OpFPTrunc
	OpBitcast
	OpPtrToInt
	OpIntToPtr

	// Other.
	OpPhi
	OpSelect
	OpCall

	// Terminators.
	OpBr     // br label %t
	OpCondBr // br i1 %c, label %t, label %f
	OpRet    // ret void | ret T %v

	// Debug intrinsic: relates an SSA value to a source variable name.
	// Printed as: call void @llvm.dbg.value(metadata T %v, metadata !"name")
	OpDbgValue
)

var opNames = map[Op]string{
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpSExt: "sext", OpZExt: "zext", OpTrunc: "trunc", OpSIToFP: "sitofp",
	OpFPToSI: "fptosi", OpFPExt: "fpext", OpFPTrunc: "fptrunc",
	OpBitcast: "bitcast", OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr",
	OpPhi: "phi", OpSelect: "select", OpCall: "call",
	OpBr: "br", OpCondBr: "br", OpRet: "ret", OpDbgValue: "dbg.value",
}

// String returns the opcode mnemonic.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsTerminator reports whether op terminates a basic block.
func (op Op) IsTerminator() bool { return op == OpBr || op == OpCondBr || op == OpRet }

// IsBinary reports whether op is a two-operand arithmetic/logic operation.
func (op Op) IsBinary() bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpAShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv:
		return true
	}
	return false
}

// IsCast reports whether op is a value conversion.
func (op Op) IsCast() bool {
	switch op {
	case OpSExt, OpZExt, OpTrunc, OpSIToFP, OpFPToSI, OpFPExt, OpFPTrunc,
		OpBitcast, OpPtrToInt, OpIntToPtr:
		return true
	}
	return false
}

// CmpPred is a comparison predicate for icmp/fcmp.
type CmpPred int

// Comparison predicates. Integer predicates are signed; fcmp uses the
// ordered forms.
const (
	CmpEQ CmpPred = iota
	CmpNE
	CmpSLT
	CmpSLE
	CmpSGT
	CmpSGE
)

var predNames = [...]string{"eq", "ne", "slt", "sle", "sgt", "sge"}
var fpredNames = [...]string{"oeq", "one", "olt", "ole", "ogt", "oge"}

// String returns the icmp spelling of the predicate.
func (p CmpPred) String() string { return predNames[p] }

// FloatString returns the fcmp spelling of the predicate.
func (p CmpPred) FloatString() string { return fpredNames[p] }

// Inverse returns the negated predicate (eq<->ne, slt<->sge, ...).
func (p CmpPred) Inverse() CmpPred {
	switch p {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpSLT:
		return CmpSGE
	case CmpSLE:
		return CmpSGT
	case CmpSGT:
		return CmpSLE
	case CmpSGE:
		return CmpSLT
	}
	return p
}

// Swapped returns the predicate with operands exchanged (slt -> sgt, ...).
func (p CmpPred) Swapped() CmpPred {
	switch p {
	case CmpSLT:
		return CmpSGT
	case CmpSLE:
		return CmpSGE
	case CmpSGT:
		return CmpSLT
	case CmpSGE:
		return CmpSLE
	}
	return p
}

// Instr is a single IR instruction. One struct represents all opcodes;
// operand roles depend on Op:
//
//	OpAlloca:  AllocaElem holds the allocated type; Args optional count.
//	OpLoad:    Args[0] = pointer.
//	OpStore:   Args[0] = value, Args[1] = pointer.
//	OpGEP:     Args[0] = base pointer, Args[1:] = indices.
//	binary:    Args[0], Args[1].
//	OpICmp/OpFCmp: Pred + Args[0], Args[1].
//	casts/OpFNeg:  Args[0].
//	OpPhi:     Args[i] incoming from Blocks[i].
//	OpSelect:  Args[0] = cond, Args[1], Args[2].
//	OpCall:    Callee + Args.
//	OpBr:      Blocks[0] = target.
//	OpCondBr:  Args[0] = cond, Blocks[0] = true, Blocks[1] = false.
//	OpRet:     Args[0] optional return value.
//	OpDbgValue: Args[0] = described value, VarName = source variable.
type Instr struct {
	Parent *Block
	Op     Op
	// Nam is the SSA result name (without the % sigil); empty for
	// instructions that produce no value.
	Nam string
	// Typ is the result type (Void for no result).
	Typ    Type
	Args   []Value
	Blocks []*Block
	Pred   CmpPred
	// Callee is the called value for OpCall (usually a *Function).
	Callee Value
	// AllocaElem is the element type allocated by OpAlloca.
	AllocaElem Type
	// VarName is the source variable name for OpDbgValue.
	VarName string
	// SrcLine is the 1-based source line this instruction was generated
	// from, or 0 when unknown.
	SrcLine int
}

// Type returns the instruction's result type.
func (in *Instr) Type() Type {
	if in.Typ == nil {
		return Void
	}
	return in.Typ
}

// Ident returns "%name" for value-producing instructions.
func (in *Instr) Ident() string { return "%" + in.Nam }

// Name returns the bare SSA name.
func (in *Instr) Name() string { return in.Nam }

// HasResult reports whether the instruction produces an SSA value.
func (in *Instr) HasResult() bool { return in.Typ != nil && !IsVoid(in.Typ) }

// IsTerminator reports whether the instruction ends its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// Succs returns the successor blocks of a terminator (nil otherwise).
func (in *Instr) Succs() []*Block {
	switch in.Op {
	case OpBr, OpCondBr:
		return in.Blocks
	}
	return nil
}

// PhiIncoming returns the value flowing into this phi from pred, or nil.
func (in *Instr) PhiIncoming(pred *Block) Value {
	for i, b := range in.Blocks {
		if b == pred {
			return in.Args[i]
		}
	}
	return nil
}

// SetPhiIncoming sets (or adds) the incoming value from pred.
func (in *Instr) SetPhiIncoming(pred *Block, v Value) {
	for i, b := range in.Blocks {
		if b == pred {
			in.Args[i] = v
			return
		}
	}
	in.Blocks = append(in.Blocks, pred)
	in.Args = append(in.Args, v)
}

// RemovePhiIncoming deletes the incoming edge from pred, if present.
func (in *Instr) RemovePhiIncoming(pred *Block) {
	for i, b := range in.Blocks {
		if b == pred {
			in.Blocks = append(in.Blocks[:i], in.Blocks[i+1:]...)
			in.Args = append(in.Args[:i], in.Args[i+1:]...)
			return
		}
	}
}

// ReplaceUses substitutes new for every operand equal to old.
func (in *Instr) ReplaceUses(old, new Value) {
	for i, a := range in.Args {
		if a == old {
			in.Args[i] = new
		}
	}
	if in.Callee == old {
		in.Callee = new
	}
}

// ReplaceBlock substitutes nb for every block reference equal to ob
// (branch targets and phi incoming blocks).
func (in *Instr) ReplaceBlock(ob, nb *Block) {
	for i, b := range in.Blocks {
		if b == ob {
			in.Blocks[i] = nb
		}
	}
}

// String renders the instruction in the textual IR syntax.
func (in *Instr) String() string {
	var b strings.Builder
	in.printTo(&b)
	return b.String()
}

// printTo renders the instruction into an existing builder (the module
// printer's shared buffer — see Module.Print).
func (in *Instr) printTo(b *strings.Builder) {
	if in.HasResult() {
		fmt.Fprintf(b, "%%%s = ", in.Nam)
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(b, "alloca %s", in.AllocaElem)
	case OpLoad:
		fmt.Fprintf(b, "load %s, %s %s", in.Typ, in.Args[0].Type(), in.Args[0].Ident())
	case OpStore:
		fmt.Fprintf(b, "store %s %s, %s %s",
			in.Args[0].Type(), in.Args[0].Ident(), in.Args[1].Type(), in.Args[1].Ident())
	case OpGEP:
		base := in.Args[0]
		fmt.Fprintf(b, "getelementptr %s, %s %s", ElemOf(base.Type()), base.Type(), base.Ident())
		for _, idx := range in.Args[1:] {
			fmt.Fprintf(b, ", %s %s", idx.Type(), idx.Ident())
		}
	case OpICmp:
		fmt.Fprintf(b, "icmp %s %s %s, %s", in.Pred, in.Args[0].Type(), in.Args[0].Ident(), in.Args[1].Ident())
	case OpFCmp:
		fmt.Fprintf(b, "fcmp %s %s %s, %s", in.Pred.FloatString(), in.Args[0].Type(), in.Args[0].Ident(), in.Args[1].Ident())
	case OpPhi:
		fmt.Fprintf(b, "phi %s ", in.Typ)
		for i := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "[ %s, %%%s ]", in.Args[i].Ident(), in.Blocks[i].Nam)
		}
	case OpSelect:
		fmt.Fprintf(b, "select i1 %s, %s %s, %s %s",
			in.Args[0].Ident(), in.Args[1].Type(), in.Args[1].Ident(), in.Args[2].Type(), in.Args[2].Ident())
	case OpCall:
		fmt.Fprintf(b, "call %s %s(", in.Type(), in.Callee.Ident())
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s %s", a.Type(), a.Ident())
		}
		b.WriteString(")")
	case OpBr:
		fmt.Fprintf(b, "br label %%%s", in.Blocks[0].Nam)
	case OpCondBr:
		fmt.Fprintf(b, "br i1 %s, label %%%s, label %%%s", in.Args[0].Ident(), in.Blocks[0].Nam, in.Blocks[1].Nam)
	case OpRet:
		if len(in.Args) == 0 {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(b, "ret %s %s", in.Args[0].Type(), in.Args[0].Ident())
		}
	case OpDbgValue:
		fmt.Fprintf(b, "call void @llvm.dbg.value(metadata %s %s, metadata !%q)",
			in.Args[0].Type(), in.Args[0].Ident(), in.VarName)
	case OpFNeg:
		fmt.Fprintf(b, "fneg %s %s", in.Args[0].Type(), in.Args[0].Ident())
	default:
		if in.Op.IsBinary() {
			fmt.Fprintf(b, "%s %s %s, %s", in.Op, in.Typ, in.Args[0].Ident(), in.Args[1].Ident())
		} else if in.Op.IsCast() {
			fmt.Fprintf(b, "%s %s %s to %s", in.Op, in.Args[0].Type(), in.Args[0].Ident(), in.Typ)
		} else {
			fmt.Fprintf(b, "<%s>", in.Op)
		}
	}
}

// GEPResultType computes the result type of a GEP on base with the given
// number of trailing (element-selecting) indices. The first index steps the
// base pointer itself; each subsequent index descends into an array.
func GEPResultType(base Type, nIdx int) (Type, error) {
	p, ok := base.(*PtrType)
	if !ok {
		return nil, fmt.Errorf("gep base is not a pointer: %s", base)
	}
	t := p.Elem
	for i := 1; i < nIdx; i++ {
		a, ok := t.(*ArrayType)
		if !ok {
			return nil, fmt.Errorf("gep index %d descends into non-array %s", i, t)
		}
		t = a.Elem
	}
	return Ptr(t), nil
}
