package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module from the textual syntax produced by Module.Print.
// It supports forward references to values, blocks, functions, and globals.
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src), mod: NewModule("")}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	return p.mod, nil
}

// MustParse is Parse that panics on error; intended for tests and fixtures.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic("ir.MustParse: " + err.Error())
	}
	return m
}

// --- lexer ---

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tLocal  // %name
	tGlobal // @name
	tNumber
	tString // !"..."
	tPunct  // single-char punctuation, and "..."
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	tok  token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src, line: 1}
	l.next()
	return l
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c == '-' && false ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

func (l *lexer) next() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == ';': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		l.tok = token{kind: tEOF, line: l.line}
		return
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '%' || c == '@':
		l.pos++
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			// A bare sigil names nothing; let expects fail on it.
			l.tok = token{kind: tPunct, text: string(c), line: l.line}
			return
		}
		kind := tLocal
		if c == '@' {
			kind = tGlobal
		}
		l.tok = token{kind: kind, text: l.src[start+1 : l.pos], line: l.line}
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '"' {
			l.pos++
			s := l.pos
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				l.pos++
			}
			text := l.src[s:l.pos]
			if l.pos < len(l.src) {
				l.pos++
			}
			l.tok = token{kind: tString, text: text, line: l.line}
		} else {
			// Bare metadata reference like !30: treat as string token.
			s := l.pos
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			l.tok = token{kind: tString, text: l.src[s:l.pos], line: l.line}
		}
	case c == '-' || c >= '0' && c <= '9':
		l.pos++
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d >= '0' && d <= '9' || d == '.' || d == 'e' || d == 'E' || d == '+' && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') || d == '-' && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
				l.pos++
				continue
			}
			break
		}
		l.tok = token{kind: tNumber, text: l.src[start:l.pos], line: l.line}
	case isIdentChar(c):
		if strings.HasPrefix(l.src[l.pos:], "...") {
			l.pos += 3
			l.tok = token{kind: tPunct, text: "...", line: l.line}
			return
		}
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		l.tok = token{kind: tIdent, text: l.src[start:l.pos], line: l.line}
	default:
		if strings.HasPrefix(l.src[l.pos:], "...") {
			l.pos += 3
			l.tok = token{kind: tPunct, text: "...", line: l.line}
			return
		}
		l.pos++
		l.tok = token{kind: tPunct, text: string(c), line: l.line}
	}
}

// --- parser ---

type fixup struct {
	instr *Instr
	idx   int // -1 means callee
	name  string
	typ   Type
	line  int
}

type parser struct {
	lex *lexer
	mod *Module

	fn        *Function
	blocks    map[string]*Block
	vals      map[string]Value
	fixups    []fixup
	modFixups []fixup
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir parse: line %d: %s", p.lex.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) tok() token { return p.lex.tok }

func (p *parser) advance() token {
	t := p.lex.tok
	p.lex.next()
	return t
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.lex.tok.kind == kind && (text == "" || p.lex.tok.text == text) {
		p.lex.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.lex.tok.kind != kind || text != "" && p.lex.tok.text != text {
		return token{}, p.errf("expected %q, got %q", text, p.lex.tok.text)
	}
	return p.advance(), nil
}

func (p *parser) parseModule() error {
	for {
		t := p.tok()
		switch {
		case t.kind == tEOF:
			return p.resolveModFixups()
		case t.kind == tGlobal:
			if err := p.parseGlobal(); err != nil {
				return err
			}
		case t.kind == tIdent && (t.text == "define" || t.text == "declare"):
			p.advance()
			if err := p.parseFunction(t.text == "declare"); err != nil {
				return err
			}
		default:
			return p.errf("unexpected token %q at module level", t.text)
		}
	}
}

// resolveModFixups patches deferred module-level references once the
// whole module has been read.
func (p *parser) resolveModFixups() error {
	for _, fx := range p.modFixups {
		n := strings.TrimPrefix(fx.name, "@")
		var v Value
		if g := p.mod.GlobalByName(n); g != nil {
			v = g
		} else if fn := p.mod.FuncByName(n); fn != nil {
			v = fn
		}
		if v == nil {
			return fmt.Errorf("ir parse: line %d: undefined symbol @%s", fx.line, n)
		}
		if fx.idx == -1 {
			fx.instr.Callee = v
		} else {
			fx.instr.Args[fx.idx] = v
		}
	}
	return nil
}

func (p *parser) parseType() (Type, error) {
	t := p.tok()
	var base Type
	switch {
	case t.kind == tIdent:
		switch t.text {
		case "void":
			base = Void
		case "i1":
			base = I1
		case "i8":
			base = I8
		case "i32":
			base = I32
		case "i64":
			base = I64
		case "float":
			base = F32
		case "double":
			base = F64
		default:
			return nil, p.errf("unknown type %q", t.text)
		}
		p.advance()
	case t.kind == tPunct && t.text == "[":
		p.advance()
		n, err := p.expect(tNumber, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tIdent, "x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		ln, err := strconv.Atoi(n.text)
		if err != nil || ln < 0 {
			return nil, p.errf("bad array length %q", n.text)
		}
		base = Array(ln, elem)
	default:
		return nil, p.errf("expected type, got %q", t.text)
	}
	for p.accept(tPunct, "*") {
		base = Ptr(base)
	}
	// Function type: "ret (params...)" with optional trailing stars.
	// Only a "(" directly after a type begins a parameter list in this
	// grammar (call syntax places the callee symbol before its "(").
	if p.tok().kind == tPunct && p.tok().text == "(" {
		p.advance()
		ft := &FuncType{Ret: base}
		for !p.accept(tPunct, ")") {
			if len(ft.Params) > 0 || ft.Variadic {
				if _, err := p.expect(tPunct, ","); err != nil {
					return nil, err
				}
			}
			if p.accept(tPunct, "...") {
				ft.Variadic = true
				continue
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ft.Params = append(ft.Params, pt)
		}
		base = ft
		for p.accept(tPunct, "*") {
			base = Ptr(base)
		}
	}
	return base, nil
}

func (p *parser) parseGlobal() error {
	name := p.advance().text
	if _, err := p.expect(tPunct, "="); err != nil {
		return err
	}
	kw := p.advance()
	if kw.kind != tIdent || kw.text != "global" && kw.text != "constant" {
		return p.errf("expected global/constant, got %q", kw.text)
	}
	elem, err := p.parseType()
	if err != nil {
		return err
	}
	g := &Global{Nam: name, Elem: elem, Constant: kw.text == "constant"}
	if p.accept(tIdent, "zeroinitializer") {
		// zero-initialized
	} else {
		v, err := p.parseConst(elem)
		if err != nil {
			return err
		}
		g.Init = v
	}
	p.mod.AddGlobal(g)
	return nil
}

func (p *parser) parseConst(typ Type) (Value, error) {
	t := p.tok()
	switch {
	case t.kind == tNumber:
		p.advance()
		if IsFloatType(typ) {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad float %q", t.text)
			}
			return &ConstFloat{Typ: typ.(*BasicType), V: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr == nil && IsIntegerType(typ) {
				return nil, p.errf("float literal %q for integer type %s", t.text, typ)
			}
			_ = f
			return nil, p.errf("bad number %q", t.text)
		}
		bt, ok := typ.(*BasicType)
		if !ok || !bt.IsInteger() {
			return nil, p.errf("integer literal %q for type %s", t.text, typ)
		}
		return &ConstInt{Typ: bt, V: n}, nil
	case t.kind == tIdent && t.text == "null":
		p.advance()
		pt, ok := typ.(*PtrType)
		if !ok {
			return nil, p.errf("null for non-pointer type %s", typ)
		}
		return Null(pt), nil
	case t.kind == tIdent && t.text == "undef":
		p.advance()
		return Undef(typ), nil
	case t.kind == tIdent && (t.text == "true" || t.text == "false"):
		p.advance()
		return BoolConst(t.text == "true"), nil
	}
	return nil, p.errf("expected constant, got %q", t.text)
}

// parseOperand parses a value reference of declared type typ, deferring
// resolution of %locals until the function is complete.
func (p *parser) parseOperand(typ Type, in *Instr, argIdx int) (Value, error) {
	t := p.tok()
	switch t.kind {
	case tLocal:
		p.advance()
		if v, ok := p.vals[t.text]; ok {
			if typ != nil && v.Type() != nil && !v.Type().Equal(typ) {
				return nil, p.errf("%%%s has type %s, used as %s", t.text, v.Type(), typ)
			}
			return v, nil
		}
		p.fixups = append(p.fixups, fixup{instr: in, idx: argIdx, name: t.text, typ: typ, line: t.line})
		return Undef(typ), nil // placeholder patched later
	case tGlobal:
		p.advance()
		if g := p.mod.GlobalByName(t.text); g != nil {
			return g, nil
		}
		if f := p.mod.FuncByName(t.text); f != nil {
			return f, nil
		}
		p.fixups = append(p.fixups, fixup{instr: in, idx: argIdx, name: "@" + t.text, typ: typ, line: t.line})
		return Undef(typ), nil
	default:
		return p.parseConst(typ)
	}
}

func (p *parser) block(name string) *Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := &Block{Nam: name, Parent: p.fn}
	p.blocks[name] = b
	return b
}

func (p *parser) parseFunction(isDecl bool) error {
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	nameTok, err := p.expect(tGlobal, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(tPunct, "("); err != nil {
		return err
	}
	sig := &FuncType{Ret: ret}
	var paramNames []string
	for !p.accept(tPunct, ")") {
		if len(sig.Params) > 0 || sig.Variadic {
			if _, err := p.expect(tPunct, ","); err != nil {
				return err
			}
		}
		if p.accept(tPunct, "...") {
			sig.Variadic = true
			continue
		}
		pt, err := p.parseType()
		if err != nil {
			return err
		}
		sig.Params = append(sig.Params, pt)
		pn := ""
		if p.tok().kind == tLocal {
			pn = p.advance().text
			for _, prev := range paramNames {
				if prev == pn {
					return p.errf("duplicate parameter name %%%s", pn)
				}
			}
		}
		paramNames = append(paramNames, pn)
	}
	// Reuse an existing forward declaration if present so call sites
	// resolve to a single Function value.
	f := p.mod.FuncByName(nameTok.text)
	if f == nil {
		f = p.mod.AddFunc(NewFunction(nameTok.text, sig, paramNames...))
	} else if !isDecl && !f.IsDecl() {
		return p.errf("redefinition of @%s", nameTok.text)
	} else if !isDecl {
		// Upgrade declaration to definition with the new parameter names.
		nf := NewFunction(nameTok.text, sig, paramNames...)
		f.Sig, f.Params = nf.Sig, nf.Params
		for _, pp := range f.Params {
			pp.Parent = f
		}
	}
	if isDecl {
		return nil
	}
	if p.accept(tIdent, "outlined") {
		f.Outlined = true
	}
	if _, err := p.expect(tPunct, "{"); err != nil {
		return err
	}

	p.fn = f
	p.blocks = map[string]*Block{}
	p.vals = map[string]Value{}
	p.fixups = nil
	for _, pp := range f.Params {
		p.vals[pp.Nam] = pp
	}

	var cur *Block
	for !p.accept(tPunct, "}") {
		t := p.tok()
		if t.kind == tEOF {
			return p.errf("unexpected EOF in function body")
		}
		// Block label: ident ':'
		if t.kind == tIdent && p.peekIsLabel() {
			p.advance()
			p.advance() // ':'
			cur = p.block(t.text)
			f.AddBlock(cur)
			continue
		}
		if cur == nil {
			return p.errf("instruction before first block label")
		}
		in, err := p.parseInstr()
		if err != nil {
			return err
		}
		cur.Append(in)
		if in.HasResult() {
			if _, dup := p.vals[in.Nam]; dup {
				return p.errf("redefinition of %%%s", in.Nam)
			}
			p.vals[in.Nam] = in
		}
	}
	// Resolve local fixups now; module-level (@) references may point at
	// globals or functions defined later, so defer unresolved ones.
	for _, fx := range p.fixups {
		var v Value
		if strings.HasPrefix(fx.name, "@") {
			n := fx.name[1:]
			if g := p.mod.GlobalByName(n); g != nil {
				v = g
			} else if fn := p.mod.FuncByName(n); fn != nil {
				v = fn
			} else {
				p.modFixups = append(p.modFixups, fx)
				continue
			}
		} else {
			v = p.vals[fx.name]
		}
		if v == nil {
			return fmt.Errorf("ir parse: line %d: undefined value %%%s", fx.line, fx.name)
		}
		if !strings.HasPrefix(fx.name, "@") && fx.typ != nil && v.Type() != nil && !v.Type().Equal(fx.typ) {
			return fmt.Errorf("ir parse: line %d: %%%s has type %s, used as %s", fx.line, fx.name, v.Type(), fx.typ)
		}
		if fx.idx == -1 {
			fx.instr.Callee = v
		} else {
			fx.instr.Args[fx.idx] = v
		}
	}
	// Verify all referenced blocks were defined.
	for name, b := range p.blocks {
		if b.Parent == nil || f.BlockByName(name) == nil {
			return fmt.Errorf("ir parse: undefined block label %%%s in @%s", name, f.Nam)
		}
	}
	f.RecomputeNameSeq()
	return nil
}

// peekIsLabel reports whether the token after the current ident is ':'.
func (p *parser) peekIsLabel() bool {
	save := *p.lex
	p.lex.next()
	isLabel := p.lex.tok.kind == tPunct && p.lex.tok.text == ":"
	*p.lex = save
	return isLabel
}

var strToPred = map[string]CmpPred{
	"eq": CmpEQ, "ne": CmpNE, "slt": CmpSLT, "sle": CmpSLE, "sgt": CmpSGT, "sge": CmpSGE,
	"oeq": CmpEQ, "one": CmpNE, "olt": CmpSLT, "ole": CmpSLE, "ogt": CmpSGT, "oge": CmpSGE,
}

var strToBinOp = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "sdiv": OpSDiv, "srem": OpSRem,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "ashr": OpAShr,
	"fadd": OpFAdd, "fsub": OpFSub, "fmul": OpFMul, "fdiv": OpFDiv,
}

var strToCastOp = map[string]Op{
	"sext": OpSExt, "zext": OpZExt, "trunc": OpTrunc, "sitofp": OpSIToFP,
	"fptosi": OpFPToSI, "fpext": OpFPExt, "fptrunc": OpFPTrunc,
	"bitcast": OpBitcast, "ptrtoint": OpPtrToInt, "inttoptr": OpIntToPtr,
}

func (p *parser) parseInstr() (*Instr, error) {
	resName := ""
	if p.tok().kind == tLocal {
		resName = p.advance().text
		if _, err := p.expect(tPunct, "="); err != nil {
			return nil, err
		}
	}
	opTok, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	in := &Instr{Nam: resName, SrcLine: opTok.line}

	switch op := opTok.text; {
	case op == "alloca":
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Op, in.Typ, in.AllocaElem = OpAlloca, Ptr(elem), elem

	case op == "load":
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Op, in.Typ = OpLoad, rt
		in.Args = make([]Value, 1)
		v, err := p.parseOperand(pt, in, 0)
		if err != nil {
			return nil, err
		}
		in.Args[0] = v

	case op == "store":
		vt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Op, in.Typ = OpStore, Void
		in.Args = make([]Value, 2)
		v, err := p.parseOperand(vt, in, 0)
		if err != nil {
			return nil, err
		}
		in.Args[0] = v
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		ptr, err := p.parseOperand(pt, in, 1)
		if err != nil {
			return nil, err
		}
		in.Args[1] = ptr

	case op == "getelementptr":
		if _, err := p.parseType(); err != nil { // pointee type, redundant
			return nil, err
		}
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
		bt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Op = OpGEP
		in.Args = make([]Value, 1)
		base, err := p.parseOperand(bt, in, 0)
		if err != nil {
			return nil, err
		}
		in.Args[0] = base
		for p.accept(tPunct, ",") {
			it, err := p.parseType()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, nil)
			idx, err := p.parseOperand(it, in, len(in.Args)-1)
			if err != nil {
				return nil, err
			}
			in.Args[len(in.Args)-1] = idx
		}
		rt, err := GEPResultType(bt, len(in.Args)-1)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		in.Typ = rt

	case op == "icmp" || op == "fcmp":
		predTok, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		pred, ok := strToPred[predTok.text]
		if !ok {
			return nil, p.errf("bad predicate %q", predTok.text)
		}
		ot, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Op, in.Typ, in.Pred = OpICmp, I1, pred
		if op == "fcmp" {
			in.Op = OpFCmp
		}
		in.Args = make([]Value, 2)
		a, err := p.parseOperand(ot, in, 0)
		if err != nil {
			return nil, err
		}
		in.Args[0] = a
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
		b, err := p.parseOperand(ot, in, 1)
		if err != nil {
			return nil, err
		}
		in.Args[1] = b

	case op == "phi":
		ot, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Op, in.Typ = OpPhi, ot
		for {
			if _, err := p.expect(tPunct, "["); err != nil {
				return nil, err
			}
			in.Args = append(in.Args, nil)
			v, err := p.parseOperand(ot, in, len(in.Args)-1)
			if err != nil {
				return nil, err
			}
			in.Args[len(in.Args)-1] = v
			if _, err := p.expect(tPunct, ","); err != nil {
				return nil, err
			}
			bl, err := p.expect(tLocal, "")
			if err != nil {
				return nil, err
			}
			in.Blocks = append(in.Blocks, p.block(bl.text))
			if _, err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			if !p.accept(tPunct, ",") {
				break
			}
		}

	case op == "select":
		if _, err := p.expect(tIdent, "i1"); err != nil {
			return nil, err
		}
		in.Op = OpSelect
		in.Args = make([]Value, 3)
		c, err := p.parseOperand(I1, in, 0)
		if err != nil {
			return nil, err
		}
		in.Args[0] = c
		for i := 1; i <= 2; i++ {
			if _, err := p.expect(tPunct, ","); err != nil {
				return nil, err
			}
			vt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if i == 1 {
				in.Typ = vt
			}
			v, err := p.parseOperand(vt, in, i)
			if err != nil {
				return nil, err
			}
			in.Args[i] = v
		}

	case op == "call":
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		// Special-case the debug intrinsic spelling.
		if p.tok().kind == tGlobal && p.tok().text == "llvm.dbg.value" {
			p.advance()
			if _, err := p.expect(tPunct, "("); err != nil {
				return nil, err
			}
			if _, err := p.expect(tIdent, "metadata"); err != nil {
				return nil, err
			}
			vt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			in.Op, in.Typ = OpDbgValue, Void
			in.Args = make([]Value, 1)
			v, err := p.parseOperand(vt, in, 0)
			if err != nil {
				return nil, err
			}
			in.Args[0] = v
			if _, err := p.expect(tPunct, ","); err != nil {
				return nil, err
			}
			if _, err := p.expect(tIdent, "metadata"); err != nil {
				return nil, err
			}
			st, err := p.expect(tString, "")
			if err != nil {
				return nil, err
			}
			in.VarName = st.text
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
		calleeTok, err := p.expect(tGlobal, "")
		if err != nil {
			return nil, err
		}
		in.Op, in.Typ = OpCall, rt
		if f := p.mod.FuncByName(calleeTok.text); f != nil {
			in.Callee = f
		} else {
			p.fixups = append(p.fixups, fixup{instr: in, idx: -1, name: "@" + calleeTok.text, line: calleeTok.line})
		}
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		for !p.accept(tPunct, ")") {
			if len(in.Args) > 0 {
				if _, err := p.expect(tPunct, ","); err != nil {
					return nil, err
				}
			}
			at, err := p.parseType()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, nil)
			v, err := p.parseOperand(at, in, len(in.Args)-1)
			if err != nil {
				return nil, err
			}
			in.Args[len(in.Args)-1] = v
		}

	case op == "br":
		if p.accept(tIdent, "label") {
			bl, err := p.expect(tLocal, "")
			if err != nil {
				return nil, err
			}
			in.Op, in.Typ = OpBr, Void
			in.Blocks = []*Block{p.block(bl.text)}
			break
		}
		if _, err := p.expect(tIdent, "i1"); err != nil {
			return nil, err
		}
		in.Op, in.Typ = OpCondBr, Void
		in.Args = make([]Value, 1)
		c, err := p.parseOperand(I1, in, 0)
		if err != nil {
			return nil, err
		}
		in.Args[0] = c
		for i := 0; i < 2; i++ {
			if _, err := p.expect(tPunct, ","); err != nil {
				return nil, err
			}
			if _, err := p.expect(tIdent, "label"); err != nil {
				return nil, err
			}
			bl, err := p.expect(tLocal, "")
			if err != nil {
				return nil, err
			}
			in.Blocks = append(in.Blocks, p.block(bl.text))
		}

	case op == "ret":
		in.Op, in.Typ = OpRet, Void
		if p.accept(tIdent, "void") {
			break
		}
		vt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Args = make([]Value, 1)
		v, err := p.parseOperand(vt, in, 0)
		if err != nil {
			return nil, err
		}
		in.Args[0] = v

	case op == "fneg":
		vt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Op, in.Typ = OpFNeg, vt
		in.Args = make([]Value, 1)
		v, err := p.parseOperand(vt, in, 0)
		if err != nil {
			return nil, err
		}
		in.Args[0] = v

	default:
		if bop, ok := strToBinOp[op]; ok {
			ot, err := p.parseType()
			if err != nil {
				return nil, err
			}
			in.Op, in.Typ = bop, ot
			in.Args = make([]Value, 2)
			a, err := p.parseOperand(ot, in, 0)
			if err != nil {
				return nil, err
			}
			in.Args[0] = a
			if _, err := p.expect(tPunct, ","); err != nil {
				return nil, err
			}
			b, err := p.parseOperand(ot, in, 1)
			if err != nil {
				return nil, err
			}
			in.Args[1] = b
			break
		}
		if cop, ok := strToCastOp[op]; ok {
			st, err := p.parseType()
			if err != nil {
				return nil, err
			}
			in.Op = cop
			in.Args = make([]Value, 1)
			v, err := p.parseOperand(st, in, 0)
			if err != nil {
				return nil, err
			}
			in.Args[0] = v
			if _, err := p.expect(tIdent, "to"); err != nil {
				return nil, err
			}
			dt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			in.Typ = dt
			break
		}
		return nil, p.errf("unknown instruction %q", op)
	}
	// Value-producing instructions must bind a result name: an unnamed
	// one would print as "% = ..." and fail to reparse.
	if in.HasResult() && in.Nam == "" {
		return nil, p.errf("%s produces a value and needs a %%name = binding", opTok.text)
	}
	if !in.HasResult() && in.Nam != "" {
		return nil, p.errf("%s produces no value; remove the %%%s = binding", opTok.text, in.Nam)
	}
	return in, nil
}
