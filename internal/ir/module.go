package ir

// Module is a translation unit: globals plus functions.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Function
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// AddFunc appends f to the module and sets its parent.
func (m *Module) AddFunc(f *Function) *Function {
	f.Parent = m
	m.Funcs = append(m.Funcs, f)
	return f
}

// RemoveFunc deletes f from the module.
func (m *Module) RemoveFunc(f *Function) {
	for i, x := range m.Funcs {
		if x == f {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			return
		}
	}
}

// FuncByName returns the function named name, or nil.
func (m *Module) FuncByName(name string) *Function {
	for _, f := range m.Funcs {
		if f.Nam == name {
			return f
		}
	}
	return nil
}

// AddGlobal appends g to the module.
func (m *Module) AddGlobal(g *Global) *Global {
	m.Globals = append(m.Globals, g)
	return g
}

// GlobalByName returns the global named name, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Nam == name {
			return g
		}
	}
	return nil
}

// DeclareFunc returns the declaration for name, creating it when absent.
// Used for external/runtime functions such as the OpenMP entry points.
func (m *Module) DeclareFunc(name string, sig *FuncType) *Function {
	if f := m.FuncByName(name); f != nil {
		return f
	}
	return m.AddFunc(NewFunction(name, sig))
}
