package ir

import "fmt"

// Builder constructs instructions at the end of a current block. It is the
// API the frontend and all transformation passes use to create IR.
type Builder struct {
	Func *Function
	// Cur is the insertion block; new instructions are appended to it.
	Cur *Block
	// Line is attached to created instructions as SrcLine.
	Line int
}

// NewBuilder returns a builder positioned at no block.
func NewBuilder(f *Function) *Builder { return &Builder{Func: f} }

// SetBlock moves the insertion point to the end of b.
func (bd *Builder) SetBlock(b *Block) { bd.Cur = b }

// emit appends in to the current block, naming its result if needed.
func (bd *Builder) emit(in *Instr, nameHint string) *Instr {
	if in.HasResult() && in.Nam == "" {
		in.Nam = bd.Func.FreshName(nameHint)
	}
	if in.SrcLine == 0 {
		in.SrcLine = bd.Line
	}
	bd.Cur.Append(in)
	return in
}

// Alloca allocates one element of elem on the stack frame.
func (bd *Builder) Alloca(elem Type, name string) *Instr {
	return bd.emit(&Instr{Op: OpAlloca, Typ: Ptr(elem), AllocaElem: elem}, name)
}

// Load reads through ptr.
func (bd *Builder) Load(ptr Value, name string) *Instr {
	et := ElemOf(ptr.Type())
	if et == nil {
		panic(fmt.Sprintf("ir: load from non-pointer %s", ValueString(ptr)))
	}
	return bd.emit(&Instr{Op: OpLoad, Typ: et, Args: []Value{ptr}}, name)
}

// Store writes v through ptr.
func (bd *Builder) Store(v, ptr Value) *Instr {
	return bd.emit(&Instr{Op: OpStore, Typ: Void, Args: []Value{v, ptr}}, "")
}

// GEP computes an element pointer from base and indices.
func (bd *Builder) GEP(base Value, idx []Value, name string) *Instr {
	rt, err := GEPResultType(base.Type(), len(idx))
	if err != nil {
		panic("ir: " + err.Error())
	}
	args := append([]Value{base}, idx...)
	return bd.emit(&Instr{Op: OpGEP, Typ: rt, Args: args}, name)
}

// Bin emits a binary arithmetic/logic instruction.
func (bd *Builder) Bin(op Op, a, b Value, name string) *Instr {
	if !op.IsBinary() {
		panic("ir: Bin with non-binary op " + op.String())
	}
	return bd.emit(&Instr{Op: op, Typ: a.Type(), Args: []Value{a, b}}, name)
}

// FNeg emits floating-point negation.
func (bd *Builder) FNeg(a Value, name string) *Instr {
	return bd.emit(&Instr{Op: OpFNeg, Typ: a.Type(), Args: []Value{a}}, name)
}

// ICmp emits an integer comparison.
func (bd *Builder) ICmp(p CmpPred, a, b Value, name string) *Instr {
	return bd.emit(&Instr{Op: OpICmp, Typ: I1, Pred: p, Args: []Value{a, b}}, name)
}

// FCmp emits a floating-point comparison.
func (bd *Builder) FCmp(p CmpPred, a, b Value, name string) *Instr {
	return bd.emit(&Instr{Op: OpFCmp, Typ: I1, Pred: p, Args: []Value{a, b}}, name)
}

// Cast emits a conversion of v to typ.
func (bd *Builder) Cast(op Op, v Value, typ Type, name string) *Instr {
	if !op.IsCast() {
		panic("ir: Cast with non-cast op " + op.String())
	}
	return bd.emit(&Instr{Op: op, Typ: typ, Args: []Value{v}}, name)
}

// Phi emits an (initially empty) phi of type typ at the start of the
// current block.
func (bd *Builder) Phi(typ Type, name string) *Instr {
	in := &Instr{Op: OpPhi, Typ: typ}
	if in.Nam == "" {
		in.Nam = bd.Func.FreshName(name)
	}
	in.SrcLine = bd.Line
	bd.Cur.InsertAt(bd.Cur.FirstNonPhi(), in)
	return in
}

// Select emits a conditional move.
func (bd *Builder) Select(cond, a, b Value, name string) *Instr {
	return bd.emit(&Instr{Op: OpSelect, Typ: a.Type(), Args: []Value{cond, a, b}}, name)
}

// Call emits a call to callee. The result type is taken from the callee's
// signature when available.
func (bd *Builder) Call(callee Value, args []Value, name string) *Instr {
	var rt Type = Void
	if ft, ok := callee.Type().(*FuncType); ok {
		rt = ft.Ret
	}
	return bd.emit(&Instr{Op: OpCall, Typ: rt, Callee: callee, Args: args}, name)
}

// Br emits an unconditional branch to target.
func (bd *Builder) Br(target *Block) *Instr {
	return bd.emit(&Instr{Op: OpBr, Typ: Void, Blocks: []*Block{target}}, "")
}

// CondBr emits a conditional branch.
func (bd *Builder) CondBr(cond Value, t, f *Block) *Instr {
	return bd.emit(&Instr{Op: OpCondBr, Typ: Void, Args: []Value{cond}, Blocks: []*Block{t, f}}, "")
}

// Ret emits a return; v may be nil for void.
func (bd *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Typ: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return bd.emit(in, "")
}

// DbgValue emits a debug intrinsic relating v to source variable varName.
func (bd *Builder) DbgValue(v Value, varName string) *Instr {
	return bd.emit(&Instr{Op: OpDbgValue, Typ: Void, Args: []Value{v}, VarName: varName}, "")
}
