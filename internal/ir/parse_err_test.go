package ir

import (
	"strings"
	"testing"
)

// An array length too large for int used to pass through a discarded
// strconv.Atoi error and silently become length 0 — a malformed module
// parsed "successfully" with every access out of bounds. It must be a
// positioned parse error instead.
func TestParseBadArrayLength(t *testing.T) {
	for _, src := range []string{
		"@A = global [99999999999999999999 x i64] zeroinitializer\n",
		"define void @f([99999999999999999999 x i64]* %p) {\nentry:\n  ret void\n}\n",
	} {
		m, err := Parse(src)
		if err == nil {
			t.Errorf("parse accepted overflowing array length:\n%s", m.Print())
			continue
		}
		if !strings.Contains(err.Error(), "array length") {
			t.Errorf("err = %v, want an array-length message", err)
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("err = %v, want position line 1", err)
		}
	}
}

func TestParseValidArrayLengthStillWorks(t *testing.T) {
	m, err := Parse("@A = global [16 x i64] zeroinitializer\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := m.GlobalByName("A")
	if g == nil {
		t.Fatal("no global @A")
	}
	at, ok := g.Elem.(*ArrayType)
	if !ok || at.Len != 16 {
		t.Fatalf("global elem = %v, want [16 x i64]", g.Elem)
	}
}
