package ir

// CloneFunctionInto deep-copies src's body into dst, which must share
// src's signature arity. argMap maps each src parameter to the value that
// replaces it in dst (typically dst's own parameters, or call arguments
// when inlining). It returns a map from src values to their clones so
// callers can relocate auxiliary references.
//
// Block labels and SSA names are freshened through dst.FreshName, so the
// clone never collides with existing names in dst. The returned block map
// relates each source block to its clone.
func CloneFunctionInto(dst, src *Function, argMap map[*Param]Value) (map[Value]Value, map[*Block]*Block) {
	vmap := make(map[Value]Value, len(argMap))
	for p, v := range argMap {
		vmap[p] = v
	}
	bmap := make(map[*Block]*Block, len(src.Blocks))
	for _, b := range src.Blocks {
		nb := dst.NewBlock(b.Nam)
		bmap[b] = nb
	}
	lookup := func(v Value) Value {
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v // constants, globals, functions
	}
	// First create clones of all result-producing instructions so phi
	// operands can forward-reference them.
	for _, b := range src.Blocks {
		for _, in := range b.Instrs {
			ci := &Instr{
				Op: in.Op, Typ: in.Typ, Pred: in.Pred,
				AllocaElem: in.AllocaElem, VarName: in.VarName, SrcLine: in.SrcLine,
			}
			if in.HasResult() {
				ci.Nam = dst.FreshName(in.Nam)
				vmap[in] = ci
			}
			bmap[b].Append(ci)
		}
	}
	// Then fill operands and block references.
	for _, b := range src.Blocks {
		for i, in := range b.Instrs {
			ci := bmap[b].Instrs[i]
			for _, a := range in.Args {
				ci.Args = append(ci.Args, lookup(a))
			}
			if in.Callee != nil {
				ci.Callee = lookup(in.Callee)
			}
			for _, tb := range in.Blocks {
				ci.Blocks = append(ci.Blocks, bmap[tb])
			}
		}
	}
	return vmap, bmap
}

// CloneFunction returns an independent copy of f named name, registered in
// the same module when f has one.
func CloneFunction(f *Function, name string) *Function {
	nf := NewFunction(name, f.Sig)
	for i, p := range f.Params {
		nf.Params[i].Nam = p.Nam
		nf.Params[i].SourceName = p.SourceName
	}
	nf.RecomputeNameSeq()
	argMap := make(map[*Param]Value, len(f.Params))
	for i, p := range f.Params {
		argMap[p] = nf.Params[i]
	}
	CloneFunctionInto(nf, f, argMap)
	nf.Outlined = f.Outlined
	if f.Parent != nil {
		f.Parent.AddFunc(nf)
	}
	return nf
}
