package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in the textual IR syntax accepted by Parse.
// One strings.Builder is shared across globals, functions, and
// instructions (each used to allocate its own), so printing a module is
// a single growing buffer instead of a quadratic copy chain — this is
// the emission hot path: the decompiler clones modules via Print+Parse,
// and the driver's memoized pipeline keys cache entries on printed IR.
func (m *Module) Print() string {
	var b strings.Builder
	b.Grow(m.printSizeHint())
	for _, g := range m.Globals {
		g.declTo(&b)
		b.WriteByte('\n')
	}
	if len(m.Globals) > 0 {
		b.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		f.printTo(&b)
	}
	return b.String()
}

// printSizeHint estimates the printed size (~40 bytes per instruction
// line) so the shared builder grows once instead of doubling repeatedly.
func (m *Module) printSizeHint() int {
	n := 64 * len(m.Globals)
	for _, f := range m.Funcs {
		n += 64
		for _, blk := range f.Blocks {
			n += 16 + 40*len(blk.Instrs)
		}
	}
	return n
}

// Decl renders the global's declaration line.
func (g *Global) Decl() string {
	var b strings.Builder
	g.declTo(&b)
	return b.String()
}

func (g *Global) declTo(b *strings.Builder) {
	kw := "global"
	if g.Constant {
		kw = "constant"
	}
	init := "zeroinitializer"
	if g.Init != nil {
		init = g.Init.Ident()
	}
	fmt.Fprintf(b, "@%s = %s %s %s", g.Nam, kw, g.Elem, init)
}

// Print renders the function definition or declaration.
func (f *Function) Print() string {
	var b strings.Builder
	f.printTo(&b)
	return b.String()
}

func (f *Function) printTo(b *strings.Builder) {
	kw := "define"
	if f.IsDecl() {
		kw = "declare"
	}
	fmt.Fprintf(b, "%s %s @%s(", kw, f.Sig.Ret, f.Nam)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %%%s", p.Typ, p.Nam)
	}
	if f.Sig.Variadic {
		if len(f.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(")")
	if f.IsDecl() {
		b.WriteString("\n")
		return
	}
	if f.Outlined {
		b.WriteString(" outlined")
	}
	b.WriteString(" {\n")
	for i, blk := range f.Blocks {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(blk.Nam)
		b.WriteString(":\n")
		for _, in := range blk.Instrs {
			b.WriteString("  ")
			in.printTo(b)
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
}
