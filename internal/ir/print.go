package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in the textual IR syntax accepted by Parse.
func (m *Module) Print() string {
	var b strings.Builder
	for _, g := range m.Globals {
		b.WriteString(g.Decl())
		b.WriteByte('\n')
	}
	if len(m.Globals) > 0 {
		b.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.Print())
	}
	return b.String()
}

// Decl renders the global's declaration line.
func (g *Global) Decl() string {
	kw := "global"
	if g.Constant {
		kw = "constant"
	}
	init := "zeroinitializer"
	if g.Init != nil {
		init = g.Init.Ident()
	}
	return fmt.Sprintf("@%s = %s %s %s", g.Nam, kw, g.Elem, init)
}

// Print renders the function definition or declaration.
func (f *Function) Print() string {
	var b strings.Builder
	kw := "define"
	if f.IsDecl() {
		kw = "declare"
	}
	fmt.Fprintf(&b, "%s %s @%s(", kw, f.Sig.Ret, f.Nam)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %%%s", p.Typ, p.Nam)
	}
	if f.Sig.Variadic {
		if len(f.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(")")
	if f.IsDecl() {
		b.WriteString("\n")
		return b.String()
	}
	if f.Outlined {
		b.WriteString(" outlined")
	}
	b.WriteString(" {\n")
	for i, blk := range f.Blocks {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s:\n", blk.Nam)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
