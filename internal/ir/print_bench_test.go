package ir_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
)

// benchModule builds a module with nFuncs functions of nBlocks blocks
// each — large enough that Print's allocation behaviour dominates.
func benchModule(nFuncs, nBlocks int) *ir.Module {
	var src strings.Builder
	src.WriteString("@A = global [64 x double] zeroinitializer\n\n")
	for fi := 0; fi < nFuncs; fi++ {
		fmt.Fprintf(&src, "define i64 @f%d(i64 %%n) {\nentry:\n  br label %%b0\n\n", fi)
		for bi := 0; bi < nBlocks; bi++ {
			fmt.Fprintf(&src, "b%d:\n", bi)
			fmt.Fprintf(&src, "  %%x%d = add i64 %%n, %d\n", bi, bi)
			fmt.Fprintf(&src, "  %%p%d = getelementptr double, double* @A, i64 %%x%d\n", bi, bi)
			fmt.Fprintf(&src, "  %%v%d = load double, double* %%p%d\n", bi, bi)
			fmt.Fprintf(&src, "  store double %%v%d, double* %%p%d\n", bi, bi)
			if bi+1 < nBlocks {
				fmt.Fprintf(&src, "  br label %%b%d\n\n", bi+1)
			} else {
				fmt.Fprintf(&src, "  ret i64 %%x%d\n", bi)
			}
		}
		src.WriteString("}\n\n")
	}
	m, err := ir.Parse(src.String())
	if err != nil {
		panic(err)
	}
	return m
}

// BenchmarkPrintModule measures the emission hot path. Print uses one
// shared strings.Builder grown once up front, so allocs/op must stay
// flat in module size (the builder, its single growth, and the fmt
// scratch) rather than one builder + copy per function and instruction.
func BenchmarkPrintModule(b *testing.B) {
	m := benchModule(16, 32)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = len(m.Print())
	}
	_ = sink
}
