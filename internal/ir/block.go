package ir

// Block is a basic block: a named, straight-line instruction sequence
// ending in exactly one terminator.
type Block struct {
	Nam    string
	Parent *Function
	Instrs []*Instr
}

// Name returns the block label (without the % sigil).
func (b *Block) Name() string { return b.Nam }

// Terminator returns the block's final instruction if it is a terminator,
// or nil for an (invalid, under-construction) block.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	if t := b.Terminator(); t != nil {
		return t.Succs()
	}
	return nil
}

// Preds returns the predecessor blocks in function block order.
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, p := range b.Parent.Blocks {
		for _, s := range p.Succs() {
			if s == b {
				preds = append(preds, p)
				break
			}
		}
	}
	return preds
}

// Phis returns the leading phi instructions of the block.
func (b *Block) Phis() []*Instr {
	var phis []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		phis = append(phis, in)
	}
	return phis
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (b *Block) FirstNonPhi() int {
	for i, in := range b.Instrs {
		if in.Op != OpPhi {
			return i
		}
	}
	return len(b.Instrs)
}

// Append adds an instruction to the end of the block and sets its parent.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertAt inserts an instruction at index i.
func (b *Block) InsertAt(i int, in *Instr) {
	in.Parent = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Remove deletes the instruction at index i.
func (b *Block) Remove(i int) {
	b.Instrs[i].Parent = nil
	b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
}

// RemoveInstr deletes in from the block if present and reports whether it
// was found.
func (b *Block) RemoveInstr(in *Instr) bool {
	for i, x := range b.Instrs {
		if x == in {
			b.Remove(i)
			return true
		}
	}
	return false
}

// IndexOf returns the position of in within the block, or -1.
func (b *Block) IndexOf(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// ReplacePhiPred rewrites all phis so that edges recorded from old are
// recorded from new instead. Used when splitting/redirecting edges.
func (b *Block) ReplacePhiPred(old, new *Block) {
	for _, phi := range b.Phis() {
		phi.ReplaceBlock(old, new)
	}
}
