package ir

import (
	"fmt"
)

// Verify checks module-wide structural invariants and returns the first
// violation found, or nil. Passes call this after transforming IR; tests
// rely on it to catch malformed rewrites early.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("@%s: %w", f.Nam, err)
		}
	}
	return nil
}

// Verify checks the function's structural invariants:
//   - every block ends in exactly one terminator, with no terminator earlier;
//   - phi nodes appear only at block heads and have one entry per predecessor;
//   - every operand defined by an instruction belongs to this function;
//   - block labels and SSA names are unique;
//   - branch targets are blocks of this function.
func (f *Function) Verify() error {
	if f.IsDecl() {
		return nil
	}
	names := map[string]bool{}
	inFunc := map[*Instr]bool{}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		if names["%"+b.Nam] {
			return fmt.Errorf("duplicate block label %%%s", b.Nam)
		}
		names["%"+b.Nam] = true
		blockSet[b] = true
		for _, in := range b.Instrs {
			inFunc[in] = true
		}
	}
	for _, p := range f.Params {
		if names[p.Nam] {
			return fmt.Errorf("duplicate name %%%s", p.Nam)
		}
		names[p.Nam] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %%%s is empty", b.Nam)
		}
		for i, in := range b.Instrs {
			if in.Parent != b {
				return fmt.Errorf("instruction %s in %%%s has wrong parent", in, b.Nam)
			}
			if in.HasResult() {
				if in.Nam == "" {
					return fmt.Errorf("unnamed result in %%%s: %s", b.Nam, in)
				}
				if names[in.Nam] {
					return fmt.Errorf("duplicate SSA name %%%s", in.Nam)
				}
				names[in.Nam] = true
			}
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				return fmt.Errorf("block %%%s: terminator position violated at %s", b.Nam, in)
			}
			if in.Op == OpPhi && i > 0 && b.Instrs[i-1].Op != OpPhi {
				return fmt.Errorf("block %%%s: phi %s not at block head", b.Nam, in)
			}
			for _, t := range in.Succs() {
				if !blockSet[t] {
					return fmt.Errorf("block %%%s: branch to foreign block %%%s", b.Nam, t.Nam)
				}
			}
			for ai, a := range in.Args {
				if a == nil {
					return fmt.Errorf("block %%%s: nil operand %d of %s", b.Nam, ai, in)
				}
				if ia, ok := a.(*Instr); ok && !inFunc[ia] {
					return fmt.Errorf("block %%%s: operand %%%s of %s defined outside function", b.Nam, ia.Nam, in)
				}
				if pa, ok := a.(*Param); ok && pa.Parent != f {
					return fmt.Errorf("block %%%s: foreign parameter %%%s in %s", b.Nam, pa.Nam, in)
				}
			}
		}
		// Phi incoming edges must exactly match predecessors.
		preds := b.Preds()
		for _, phi := range b.Phis() {
			if len(phi.Args) != len(preds) {
				return fmt.Errorf("block %%%s: phi %%%s has %d entries for %d preds",
					b.Nam, phi.Nam, len(phi.Args), len(preds))
			}
			for _, pb := range preds {
				if phi.PhiIncoming(pb) == nil {
					return fmt.Errorf("block %%%s: phi %%%s missing entry for pred %%%s",
						b.Nam, phi.Nam, pb.Nam)
				}
			}
		}
	}
	return nil
}
