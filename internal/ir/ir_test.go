package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildLoopFunc constructs, via the builder, the canonical counted loop
//
//	for (i = 0; i < n; i++) sum += i;
//
// used throughout the tests.
func buildLoopFunc(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("test")
	f := m.AddFunc(NewFunction("sumto", &FuncType{Ret: I64, Params: []Type{I64}}, "n"))
	entry := f.NewBlock("entry")
	header := f.NewBlock("for.cond")
	body := f.NewBlock("for.body")
	exit := f.NewBlock("for.end")

	bd := NewBuilder(f)
	bd.SetBlock(entry)
	bd.Br(header)

	bd.SetBlock(header)
	iv := bd.Phi(I64, "iv")
	sum := bd.Phi(I64, "sum")
	cmp := bd.ICmp(CmpSLT, iv, f.Params[0], "cmp")
	bd.CondBr(cmp, body, exit)

	bd.SetBlock(body)
	sumNext := bd.Bin(OpAdd, sum, iv, "sum.next")
	ivNext := bd.Bin(OpAdd, iv, I64Const(1), "iv.next")
	bd.Br(header)

	bd.SetBlock(exit)
	bd.Ret(sum)

	iv.SetPhiIncoming(entry, I64Const(0))
	iv.SetPhiIncoming(body, ivNext)
	sum.SetPhiIncoming(entry, I64Const(0))
	sum.SetPhiIncoming(body, sumNext)
	return m, f
}

func TestBuilderProducesVerifiableIR(t *testing.T) {
	m, f := buildLoopFunc(t)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.Print())
	}
	if got := len(f.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4", got)
	}
	if f.Entry().Nam != "entry" {
		t.Fatalf("entry = %q", f.Entry().Nam)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m, _ := buildLoopFunc(t)
	text1 := m.Print()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text1)
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("verify reparsed: %v", err)
	}
	text2 := m2.Print()
	if text1 != text2 {
		t.Fatalf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseFullSyntax(t *testing.T) {
	src := `
@N = constant i64 4000
@A = global [4000 x double] zeroinitializer

declare double @exp(double)

define void @kernel(double* %B, i64 %n) {
entry:
  %p = alloca double
  call void @llvm.dbg.value(metadata i64 %n, metadata !"n")
  %g = getelementptr [4000 x double], [4000 x double]* @A, i64 0, i64 5
  %v = load double, double* %g
  %e = call double @exp(double %v)
  store double %e, double* %p
  %c = fcmp olt double %e, 1.5
  %s = select i1 %c, double %e, double 2.0
  %i = sitofp i64 %n to double
  %x = fadd double %s, %i
  store double %x, double* %B
  br i1 %c, label %a, label %b
a:
  br label %b
b:
  %ph = phi double [ %x, %entry ], [ 0.0, %a ]
  store double %ph, double* %B
  ret void
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	f := m.FuncByName("kernel")
	if f == nil {
		t.Fatal("kernel not found")
	}
	// dbg.value survived with its variable name.
	var foundDbg bool
	f.Instrs(func(in *Instr) {
		if in.Op == OpDbgValue && in.VarName == "n" {
			foundDbg = true
		}
	})
	if !foundDbg {
		t.Error("dbg.value for n not parsed")
	}
	// Round trip again.
	if _, err := Parse(m.Print()); err != nil {
		t.Fatalf("reparse: %v\n%s", err, m.Print())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"define void @f() { entry: br label %missing }",
		"define void @f() { entry: %x = frob i64 1, 2 }",
		"@g = global i64",
		"define void @f() { %x = add i64 1, 2 }", // instr before label
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	// Terminator in the middle of a block.
	m, f := buildLoopFunc(t)
	body := f.BlockByName("for.body")
	br := &Instr{Op: OpBr, Typ: Void, Blocks: []*Block{f.BlockByName("for.end")}}
	body.InsertAt(0, br)
	if err := m.Verify(); err == nil {
		t.Error("verify accepted mid-block terminator")
	}

	// Phi with missing predecessor entry.
	m2, f2 := buildLoopFunc(t)
	hdr := f2.BlockByName("for.cond")
	hdr.Phis()[0].RemovePhiIncoming(f2.BlockByName("entry"))
	if err := m2.Verify(); err == nil {
		t.Error("verify accepted phi with missing pred entry")
	}
}

func TestReplaceAllUses(t *testing.T) {
	_, f := buildLoopFunc(t)
	hdr := f.BlockByName("for.cond")
	iv := hdr.Phis()[0]
	repl := I64Const(7)
	f.ReplaceAllUses(iv, repl)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == Value(iv) {
					t.Fatalf("stale use of %%iv in %s", in)
				}
			}
		}
	}
	if !f.HasUses(repl) {
		t.Error("replacement value has no uses")
	}
}

func TestPredsSuccsAndPhiHelpers(t *testing.T) {
	_, f := buildLoopFunc(t)
	hdr := f.BlockByName("for.cond")
	preds := hdr.Preds()
	if len(preds) != 2 {
		t.Fatalf("header preds = %d, want 2", len(preds))
	}
	succs := hdr.Succs()
	if len(succs) != 2 || succs[0].Nam != "for.body" || succs[1].Nam != "for.end" {
		t.Fatalf("header succs wrong: %v", succs)
	}
	iv := hdr.Phis()[0]
	if got := iv.PhiIncoming(f.BlockByName("entry")); got == nil {
		t.Error("missing incoming from entry")
	}
	if got := iv.PhiIncoming(f.BlockByName("for.end")); got != nil {
		t.Error("unexpected incoming from exit")
	}
}

func TestCloneFunction(t *testing.T) {
	m, f := buildLoopFunc(t)
	nf := CloneFunction(f, "sumto.clone")
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after clone: %v", err)
	}
	if nf.NumInstrs() != f.NumInstrs() {
		t.Fatalf("clone has %d instrs, original %d", nf.NumInstrs(), f.NumInstrs())
	}
	// Mutating the clone must not touch the original.
	n0 := f.NumInstrs()
	nf.Blocks[0].Remove(0)
	if f.NumInstrs() != n0 {
		t.Error("mutating clone changed original")
	}
	// No instruction in the clone may reference an original instruction.
	orig := map[*Instr]bool{}
	f.Instrs(func(in *Instr) { orig[in] = true })
	nf.Instrs(func(in *Instr) {
		for _, a := range in.Args {
			if ia, ok := a.(*Instr); ok && orig[ia] {
				t.Errorf("clone %s references original %%%s", in, ia.Nam)
			}
		}
	})
}

func TestFreshNameNeverCollides(t *testing.T) {
	f := NewFunction("f", &FuncType{Ret: Void})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		n := f.FreshName("x")
		if seen[n] {
			t.Fatalf("FreshName repeated %q", n)
		}
		seen[n] = true
	}
}

func TestGEPResultType(t *testing.T) {
	arr2d := Array(10, Array(20, F64))
	base := Ptr(arr2d)
	got, err := GEPResultType(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Ptr(F64)) {
		t.Fatalf("GEP result = %s, want double*", got)
	}
	if _, err := GEPResultType(F64, 1); err == nil {
		t.Error("GEP on non-pointer accepted")
	}
	if _, err := GEPResultType(Ptr(F64), 3); err == nil {
		t.Error("GEP descending into scalar accepted")
	}
}

func TestCmpPredAlgebra(t *testing.T) {
	preds := []CmpPred{CmpEQ, CmpNE, CmpSLT, CmpSLE, CmpSGT, CmpSGE}
	for _, p := range preds {
		if p.Inverse().Inverse() != p {
			t.Errorf("Inverse not involutive for %s", p)
		}
		if p.Swapped().Swapped() != p {
			t.Errorf("Swapped not involutive for %s", p)
		}
	}
	if CmpSLT.Inverse() != CmpSGE {
		t.Error("slt inverse != sge")
	}
	if CmpSLT.Swapped() != CmpSGT {
		t.Error("slt swapped != sgt")
	}
}

// Property: integer constants of any value round-trip through print+parse.
func TestQuickConstIntRoundTrip(t *testing.T) {
	fn := func(v int64) bool {
		src := "define i64 @f() {\nentry:\n  %x = add i64 " +
			I64Const(v).Ident() + ", 0\n  ret i64 %x\n}\n"
		m, err := Parse(src)
		if err != nil {
			return false
		}
		in := m.FuncByName("f").Entry().Instrs[0]
		c, ok := in.Args[0].(*ConstInt)
		return ok && c.V == v
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

// Property: float constants round-trip (value-preserving) through text.
func TestQuickConstFloatRoundTrip(t *testing.T) {
	fn := func(v float64) bool {
		if v != v { // NaN has no literal form in this IR
			return true
		}
		src := "define double @f() {\nentry:\n  %x = fadd double " +
			F64Const(v).Ident() + ", 0.0\n  ret double %x\n}\n"
		m, err := Parse(src)
		if err != nil {
			return false
		}
		in := m.FuncByName("f").Entry().Instrs[0]
		c, ok := in.Args[0].(*ConstFloat)
		return ok && c.V == v
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeEquality(t *testing.T) {
	if !Ptr(F64).Equal(Ptr(F64)) {
		t.Error("double* != double*")
	}
	if Ptr(F64).Equal(Ptr(I64)) {
		t.Error("double* == i64*")
	}
	if !Array(4, I32).Equal(Array(4, I32)) {
		t.Error("[4 x i32] != [4 x i32]")
	}
	if Array(4, I32).Equal(Array(5, I32)) {
		t.Error("[4 x i32] == [5 x i32]")
	}
	ft := &FuncType{Ret: I64, Params: []Type{I64, Ptr(F64)}}
	if !ft.Equal(&FuncType{Ret: I64, Params: []Type{I64, Ptr(F64)}}) {
		t.Error("identical func types unequal")
	}
	if ft.Equal(&FuncType{Ret: I64, Params: []Type{I64}}) {
		t.Error("different arity func types equal")
	}
	if !strings.Contains(ft.String(), "i64 (i64, double*)") {
		t.Errorf("func type string = %q", ft.String())
	}
}

func TestSizeOfElems(t *testing.T) {
	if got := SizeOfElems(Array(10, Array(20, F64))); got != 200 {
		t.Errorf("SizeOfElems 2d = %d, want 200", got)
	}
	if got := SizeOfElems(F64); got != 1 {
		t.Errorf("SizeOfElems scalar = %d, want 1", got)
	}
	if got := SizeOfElems(Ptr(F64)); got != 1 {
		t.Errorf("SizeOfElems ptr = %d, want 1", got)
	}
}

func TestModuleHelpers(t *testing.T) {
	m := NewModule("m")
	sig := &FuncType{Ret: Void}
	f1 := m.DeclareFunc("ext", sig)
	f2 := m.DeclareFunc("ext", sig)
	if f1 != f2 {
		t.Error("DeclareFunc created duplicate")
	}
	g := m.AddGlobal(&Global{Nam: "g", Elem: I64})
	if m.GlobalByName("g") != g {
		t.Error("GlobalByName failed")
	}
	m.RemoveFunc(f1)
	if m.FuncByName("ext") != nil {
		t.Error("RemoveFunc failed")
	}
}

// TestParseNeverPanics mutates a valid module in pseudo-random ways and
// requires Parse to return an error rather than panic or hang.
func TestParseNeverPanics(t *testing.T) {
	base := `
@G = global i64 0
define i64 @f(i64 %n) {
entry:
  %a = add i64 %n, 1
  %c = icmp slt i64 %a, 10
  br i1 %c, label %x, label %y
x:
  ret i64 %a
y:
  %p = phi i64 [ %a, %entry ]
  ret i64 %p
}
`
	seed := uint64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for i := 0; i < 300; i++ {
		b := []byte(base)
		// A few random edits: deletions, duplications, byte flips.
		for k := 0; k < 1+next(4); k++ {
			pos := next(len(b))
			switch next(3) {
			case 0:
				b = append(b[:pos], b[min(pos+1+next(5), len(b)):]...)
			case 1:
				b[pos] = "%@(){}[],;!x0"[next(13)]
			case 2:
				ins := base[next(len(base)):]
				if len(ins) > 8 {
					ins = ins[:8]
				}
				b = append(b[:pos], append([]byte(ins), b[pos:]...)...)
			}
			if len(b) == 0 {
				break
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on mutation %d: %v\n%s", i, r, b)
				}
			}()
			m, err := Parse(string(b))
			if err == nil && m != nil {
				_ = m.Verify() // must also not panic
			}
		}()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
