package ir

import "math"

// Content hashing gives the analysis manager a cheap validity key: a
// cached dominator tree (or loop forest) computed for a function is
// reusable exactly while the function's content hash is unchanged. The
// hash walks the in-memory structure directly — no printing, no
// allocation — so validating a cache entry costs one linear scan, far
// below recomputing the analysis itself.
//
// The hash covers everything the textual printer emits (block order and
// labels, opcodes, result names, operand identities, types, predicates,
// callee names, phi incoming blocks) so two functions with equal hashes
// print identically for all practical purposes. It deliberately ignores
// SrcLine, which no analysis reads.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hasher is an incremental FNV-1a accumulator.
type hasher struct{ h uint64 }

func newHasher() hasher { return hasher{h: fnvOffset64} }

func (s *hasher) byte(b byte) {
	s.h ^= uint64(b)
	s.h *= fnvPrime64
}

func (s *hasher) uint(v uint64) {
	for i := 0; i < 8; i++ {
		s.byte(byte(v))
		v >>= 8
	}
}

func (s *hasher) str(v string) {
	for i := 0; i < len(v); i++ {
		s.byte(v[i])
	}
	s.byte(0) // terminator: "ab"+"c" differs from "a"+"bc"
}

// value hashes an operand by identity: constants by kind and payload,
// everything named (instructions, params, globals, functions) by name.
// Within one function SSA names are unique, so name identity is operand
// identity.
func (s *hasher) value(v Value) {
	switch c := v.(type) {
	case *ConstInt:
		s.byte(1)
		s.uint(uint64(c.V))
		s.str(c.Typ.String())
	case *ConstFloat:
		s.byte(2)
		s.uint(math.Float64bits(c.V))
		s.str(c.Typ.String())
	case *ConstUndef:
		s.byte(3)
		s.str(c.Type().String())
	case *ConstNull:
		s.byte(5)
		s.str(c.Typ.String())
	default:
		s.byte(4)
		s.str(v.Ident())
	}
}

// ContentHash returns a 64-bit FNV-1a hash of the function's printable
// content. Equal content implies equal hashes; the analysis manager
// treats hash equality as content equality (a deliberate, vanishingly
// unlikely-to-collide trade, the same one build caches make).
func (f *Function) ContentHash() uint64 {
	s := newHasher()
	s.str(f.Nam)
	s.str(f.Sig.String())
	for _, p := range f.Params {
		s.str(p.Nam)
	}
	if f.Outlined {
		s.byte(1)
	}
	for _, b := range f.Blocks {
		s.byte(0xB0)
		s.str(b.Nam)
		for _, in := range b.Instrs {
			s.byte(0x10)
			s.uint(uint64(in.Op))
			s.str(in.Nam)
			if in.Typ != nil {
				s.str(in.Typ.String())
			}
			if in.AllocaElem != nil {
				s.str(in.AllocaElem.String())
			}
			s.uint(uint64(in.Pred))
			s.str(in.VarName)
			if in.Callee != nil {
				s.str(in.Callee.Ident())
			}
			for _, a := range in.Args {
				s.value(a)
			}
			for _, t := range in.Blocks {
				s.str(t.Nam)
			}
		}
	}
	return s.h
}

// HashBytes returns the FNV-1a hash of raw bytes — the key the driver
// uses to memoize whole-pipeline results per source text.
func HashBytes(data string) uint64 {
	s := newHasher()
	s.str(data)
	return s.h
}
