package ir

import (
	"fmt"
	"strconv"
)

// Function is a function definition (with blocks) or declaration (without).
type Function struct {
	Nam    string
	Sig    *FuncType
	Params []*Param
	Blocks []*Block
	Parent *Module

	// Outlined marks compiler-generated parallel-region functions (the
	// parallelizer's microtasks). The decompiler uses this only for
	// diagnostics; detection itself goes through fork-call arguments.
	Outlined bool

	nameSeq map[string]int
}

// NewFunction creates a function with the given name and signature and
// materializes its parameter values using paramNames (padded/truncated to
// the signature).
func NewFunction(name string, sig *FuncType, paramNames ...string) *Function {
	f := &Function{Nam: name, Sig: sig, nameSeq: map[string]int{}}
	for i, pt := range sig.Params {
		pn := "arg" + strconv.Itoa(i)
		if i < len(paramNames) && paramNames[i] != "" {
			pn = paramNames[i]
		}
		f.Params = append(f.Params, &Param{Nam: f.FreshName(pn), Typ: pt, Parent: f})
	}
	return f
}

// Type returns the function's signature type. (Functions used as operands,
// e.g. microtask pointers passed to fork calls, are typed by signature.)
func (f *Function) Type() Type { return f.Sig }

// Ident returns "@name".
func (f *Function) Ident() string { return "@" + f.Nam }

// Name returns the bare function name.
func (f *Function) Name() string { return f.Nam }

// IsDecl reports whether the function has no body.
func (f *Function) IsDecl() bool { return len(f.Blocks) == 0 }

// Entry returns the entry block, or nil for a declaration.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// FreshName returns base if unused, otherwise base+N, and records the use.
func (f *Function) FreshName(base string) string {
	if base == "" {
		base = "t"
	}
	if f.nameSeq == nil {
		f.nameSeq = map[string]int{}
	}
	if _, used := f.nameSeq[base]; !used {
		f.nameSeq[base] = 0
		return base
	}
	for {
		f.nameSeq[base]++
		cand := base + strconv.Itoa(f.nameSeq[base])
		if _, used := f.nameSeq[cand]; !used {
			f.nameSeq[cand] = 0
			return cand
		}
	}
}

// NewBlock appends a new block with a fresh label derived from name.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Nam: f.FreshName(name), Parent: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// AddBlock appends an existing block (used by the parser and inliner);
// the caller guarantees label uniqueness.
func (f *Function) AddBlock(b *Block) {
	b.Parent = f
	f.Blocks = append(f.Blocks, b)
}

// RemoveBlock deletes block b from the function.
func (f *Function) RemoveBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// BlockByName returns the block labeled name, or nil.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Nam == name {
			return b
		}
	}
	return nil
}

// ParamByName returns the parameter named name, or nil.
func (f *Function) ParamByName(name string) *Param {
	for _, p := range f.Params {
		if p.Nam == name {
			return p
		}
	}
	return nil
}

// ReplaceAllUses substitutes new for old in every instruction operand of
// the function.
func (f *Function) ReplaceAllUses(old, new Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ReplaceUses(old, new)
		}
	}
}

// Uses returns all instructions that use v as an operand (or callee).
func (f *Function) Uses(v Value) []*Instr {
	var uses []*Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Callee == v {
				uses = append(uses, in)
				continue
			}
			for _, a := range in.Args {
				if a == v {
					uses = append(uses, in)
					break
				}
			}
		}
	}
	return uses
}

// HasUses reports whether v appears as an operand anywhere in f, ignoring
// debug intrinsics (which never keep a value alive).
func (f *Function) HasUses(v Value) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpDbgValue {
				continue
			}
			if in.Callee == v {
				return true
			}
			for _, a := range in.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}

// Instrs iterates over every instruction, calling fn; iteration snapshot is
// taken per block so fn may append to blocks safely (but not remove).
func (f *Function) Instrs(fn func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(in)
		}
	}
}

// NumInstrs counts the instructions in the function.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// RenumberNames is not used in this IR: names are stable handles chosen by
// the frontend and passes via FreshName. (LLVM renumbers %N temporaries;
// we keep symbolic names to preserve debug fidelity.)
//
// RecomputeNameSeq rebuilds the fresh-name table after bulk edits such as
// parsing or cloning, so FreshName never collides with existing names.
func (f *Function) RecomputeNameSeq() {
	f.nameSeq = map[string]int{}
	for _, p := range f.Params {
		f.nameSeq[p.Nam] = 0
	}
	for _, b := range f.Blocks {
		f.nameSeq[b.Nam] = 0
		for _, in := range b.Instrs {
			if in.HasResult() {
				f.nameSeq[in.Nam] = 0
			}
		}
	}
}

// Verify checks structural invariants; see verify.go.
func (f *Function) String() string {
	return fmt.Sprintf("func @%s (%d blocks)", f.Nam, len(f.Blocks))
}
