package ir_test

import (
	"testing"

	"repro/internal/ir"
)

// roundTripSeeds cover every construct the printer can emit: globals,
// declarations, variadic signatures, outlined functions, and each
// instruction family.
var roundTripSeeds = []string{
	"",
	"@A = global [16 x double] zeroinitializer\n@n = global i64 42\n",
	"declare double @sqrt(double)\n",
	"declare i32 @printf(i8*, ...)\n",
	`define i64 @id(i64 %x) {
entry:
  ret i64 %x
}
`,
	`define void @store(double* %p, double %v) {
entry:
  store double %v, double* %p
  ret void
}
`,
	`@A = global [8 x i64] zeroinitializer

define i64 @sum(i64 %n) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %body ]
  %cmp = icmp slt i64 %i, %n
  br i1 %cmp, label %body, label %exit

body:
  %p = getelementptr [8 x i64], [8 x i64]* @A, i64 0, i64 %i
  %v = load i64, i64* %p
  %acc.next = add i64 %acc, %v
  %i.next = add i64 %i, 1
  call void @llvm.dbg.value(metadata i64 %i.next, metadata !"i")
  br label %header

exit:
  ret i64 %acc
}
`,
	`define double @mix(double %a, i64 %b) {
entry:
  %c = sitofp i64 %b to double
  %d = fadd double %a, %c
  %e = fcmp olt double %d, 2.5
  %f = select i1 %e, double %d, double %a
  %g = fneg double %f
  ret double %g
}
`,
	`define void @outl(i64* %lb, i64* %ub) outlined {
entry:
  ret void
}
`,
}

// FuzzIRParseRoundTrip checks the printer/parser pair reaches a fixpoint
// after one round: any module the parser accepts must print to text the
// parser accepts again, producing byte-identical text (print∘parse is
// idempotent). This is the invariant the decompiler's clone-by-reparse
// and the driver's memoized pipeline both lean on.
func FuzzIRParseRoundTrip(f *testing.F) {
	for _, seed := range roundTripSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse(src)
		if err != nil {
			t.Skip() // not valid IR; nothing to round-trip
		}
		p1 := m.Print()
		m2, err := ir.Parse(p1)
		if err != nil {
			t.Fatalf("printed IR does not reparse: %v\ninput:\n%s\nprinted:\n%s", err, src, p1)
		}
		p2 := m2.Print()
		if p1 != p2 {
			t.Fatalf("print/parse not a fixpoint:\nfirst print:\n%s\nsecond print:\n%s", p1, p2)
		}
	})
}

// TestParseRejectsDegenerateIR pins inputs the fuzzer proved break the
// print/parse fixpoint unless rejected: bare name sigils, redefined
// locals, and operands used at a type other than their definition's.
// The original finding (corpus entry 7c1d7ed325e291fa) combined all
// three — two instructions both named "%", mutually referencing, with
// the fcmp's operand re-typing itself on each reparse.
func TestParseRejectsDegenerateIR(t *testing.T) {
	bad := []string{
		"define double@(double ,i64 ){A:fcmp olt double%,0%=fneg double%}",
		"define void @f(i64 %x, i64 %x) {\nentry:\n  ret void\n}\n",
		"define i64 @f() {\nentry:\n  %a = add i64 1, 2\n  %a = add i64 3, 4\n  ret i64 %a\n}\n",
		"define i1 @f(i64 %x) {\nentry:\n  %c = fcmp olt double %x, 0.0\n  ret i1 %c\n}\n",
		"define i1 @f() {\nentry:\n  %c = fcmp olt double %d, 0.0\n  %d = icmp eq i64 1, 1\n  ret i1 %c\n}\n",
	}
	for i, src := range bad {
		if _, err := ir.Parse(src); err == nil {
			t.Errorf("input %d parsed; want rejection:\n%s", i, src)
		}
	}
}

// TestRoundTripSeeds pins the seed corpus as an ordinary example-based
// test so `go test` exercises it without the fuzz engine.
func TestRoundTripSeeds(t *testing.T) {
	for i, src := range roundTripSeeds {
		m, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("seed %d does not parse: %v", i, err)
		}
		p1 := m.Print()
		m2, err := ir.Parse(p1)
		if err != nil {
			t.Fatalf("seed %d: printed IR does not reparse: %v", i, err)
		}
		if p2 := m2.Print(); p1 != p2 {
			t.Fatalf("seed %d: print/parse not a fixpoint", i)
		}
	}
}
