// Package ir implements a compact SSA intermediate representation modeled
// on LLVM-IR. It provides the module/function/block/instruction hierarchy,
// a builder, a verifier, a textual printer, and a parser for the printed
// form. The subset implemented is exactly what the SPLENDID pipeline
// consumes: integer and floating-point arithmetic, memory via
// alloca/load/store/getelementptr, control flow via br/condbr/ret, SSA phi
// nodes, calls (including OpenMP runtime calls), and debug-value
// intrinsics that relate SSA values to source variable names.
package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all IR types.
type Type interface {
	// String returns the textual form of the type, e.g. "i64" or "double*".
	String() string
	// Equal reports whether two types are structurally identical.
	Equal(Type) bool
}

// BasicKind enumerates the primitive types.
type BasicKind int

// Primitive type kinds.
const (
	KindVoid BasicKind = iota
	KindI1
	KindI8
	KindI32
	KindI64
	KindF32
	KindF64
)

// BasicType is a primitive (non-composite) type.
type BasicType struct {
	Kind BasicKind
}

// Singleton basic types. Types are compared structurally, but using these
// shared instances keeps printed IR and tests tidy.
var (
	Void = &BasicType{KindVoid}
	I1   = &BasicType{KindI1}
	I8   = &BasicType{KindI8}
	I32  = &BasicType{KindI32}
	I64  = &BasicType{KindI64}
	F32  = &BasicType{KindF32}
	F64  = &BasicType{KindF64}
)

func (t *BasicType) String() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindI1:
		return "i1"
	case KindI8:
		return "i8"
	case KindI32:
		return "i32"
	case KindI64:
		return "i64"
	case KindF32:
		return "float"
	case KindF64:
		return "double"
	}
	return fmt.Sprintf("badtype(%d)", t.Kind)
}

// Equal reports structural equality with u.
func (t *BasicType) Equal(u Type) bool {
	b, ok := u.(*BasicType)
	return ok && b.Kind == t.Kind
}

// IsInteger reports whether t is one of the integer types (including i1).
func (t *BasicType) IsInteger() bool {
	switch t.Kind {
	case KindI1, KindI8, KindI32, KindI64:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating-point type.
func (t *BasicType) IsFloat() bool {
	return t.Kind == KindF32 || t.Kind == KindF64
}

// Bits returns the bit width of an integer type, or 0 for others.
func (t *BasicType) Bits() int {
	switch t.Kind {
	case KindI1:
		return 1
	case KindI8:
		return 8
	case KindI32:
		return 32
	case KindI64:
		return 64
	}
	return 0
}

// PtrType is a typed pointer, e.g. "double*".
type PtrType struct {
	Elem Type
}

// Ptr returns the pointer type to elem.
func Ptr(elem Type) *PtrType { return &PtrType{Elem: elem} }

func (t *PtrType) String() string { return t.Elem.String() + "*" }

// Equal reports structural equality with u.
func (t *PtrType) Equal(u Type) bool {
	p, ok := u.(*PtrType)
	return ok && p.Elem.Equal(t.Elem)
}

// ArrayType is a fixed-length array, e.g. "[1000 x double]".
type ArrayType struct {
	Len  int
	Elem Type
}

// Array returns the array type of n elements of elem.
func Array(n int, elem Type) *ArrayType { return &ArrayType{Len: n, Elem: elem} }

func (t *ArrayType) String() string {
	return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
}

// Equal reports structural equality with u.
func (t *ArrayType) Equal(u Type) bool {
	a, ok := u.(*ArrayType)
	return ok && a.Len == t.Len && a.Elem.Equal(t.Elem)
}

// FuncType is a function signature type.
type FuncType struct {
	Ret      Type
	Params   []Type
	Variadic bool
}

func (t *FuncType) String() string {
	var b strings.Builder
	b.WriteString(t.Ret.String())
	b.WriteString(" (")
	for i, p := range t.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	if t.Variadic {
		if len(t.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(")")
	return b.String()
}

// Equal reports structural equality with u.
func (t *FuncType) Equal(u Type) bool {
	f, ok := u.(*FuncType)
	if !ok || !f.Ret.Equal(t.Ret) || len(f.Params) != len(t.Params) || f.Variadic != t.Variadic {
		return false
	}
	for i := range t.Params {
		if !f.Params[i].Equal(t.Params[i]) {
			return false
		}
	}
	return true
}

// IsVoid reports whether t is the void type.
func IsVoid(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && b.Kind == KindVoid
}

// IsIntegerType reports whether t is an integer type.
func IsIntegerType(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && b.IsInteger()
}

// IsFloatType reports whether t is a floating-point type.
func IsFloatType(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && b.IsFloat()
}

// IsPtrType reports whether t is a pointer type.
func IsPtrType(t Type) bool {
	_, ok := t.(*PtrType)
	return ok
}

// ElemOf returns the pointee of a pointer type, or nil if t is not a pointer.
func ElemOf(t Type) Type {
	if p, ok := t.(*PtrType); ok {
		return p.Elem
	}
	return nil
}

// SizeOfElems returns the size of t measured in scalar cells. Scalars count
// as 1; arrays multiply. Pointers count as 1 cell. This is the unit the
// interpreter's memory model uses, sidestepping byte-level layout while
// keeping getelementptr arithmetic exact.
func SizeOfElems(t Type) int {
	switch tt := t.(type) {
	case *ArrayType:
		return tt.Len * SizeOfElems(tt.Elem)
	default:
		return 1
	}
}
