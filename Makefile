.PHONY: verify test bench bench-runtime

verify:
	sh scripts/verify.sh

test:
	go test ./...

# Full benchmark sweep; BenchmarkTelemetryStages leaves per-stage
# timings in BENCH_telemetry.json and BenchmarkDriverPipeline leaves the
# serial-cold / parallel-cold / warm-session comparison in
# BENCH_driver.json for cross-PR comparison.
bench:
	go test -bench=. -benchtime=1x .
	go test -bench=Driver -benchtime=1x ./internal/driver/

# Runtime observability sweep: runs the PolyBench suite under the
# parallel-region profiler and the dynamic DOALL conflict checker,
# leaving the per-kernel profile table in BENCH_runtime.json and a
# Chrome trace of one profiled execution in BENCH_runtime_trace.json.
bench-runtime:
	go test -run '^$$' -bench=RuntimeProfile -benchtime=1x .
