.PHONY: verify test bench

verify:
	sh scripts/verify.sh

test:
	go test ./...

# Full benchmark sweep; BenchmarkTelemetryStages leaves per-stage
# timings in BENCH_telemetry.json and BenchmarkDriverPipeline leaves the
# serial-cold / parallel-cold / warm-session comparison in
# BENCH_driver.json for cross-PR comparison.
bench:
	go test -bench=. -benchtime=1x .
	go test -bench=Driver -benchtime=1x ./internal/driver/
