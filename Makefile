.PHONY: verify test bench

verify:
	sh scripts/verify.sh

test:
	go test ./...

# Full benchmark sweep; BenchmarkTelemetryStages leaves per-stage
# timings in BENCH_telemetry.json for cross-PR comparison.
bench:
	go test -bench=. -benchtime=1x .
