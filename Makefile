.PHONY: verify test bench bench-runtime bench-gate difftest fuzz

verify:
	sh scripts/verify.sh

test:
	go test ./...

# Round-trip differential sweep over generated programs; exit 1 on any
# divergence. Override SEEDS/START for longer or shifted sweeps.
START ?= 1
SEEDS ?= 500
difftest:
	go run ./cmd/difftest -seed $(START) -n $(SEEDS)

# Short native-fuzzing smoke of both harnesses (the IR text round trip
# and the full differential round trip).
fuzz:
	go test -run '^$$' -fuzz='^FuzzIRParseRoundTrip$$' -fuzztime=10s ./internal/ir/
	go test -run '^$$' -fuzz='^FuzzRoundTripExec$$' -fuzztime=10s ./internal/difftest/

# Full benchmark sweep; BenchmarkTelemetryStages leaves per-stage
# timings in BENCH_telemetry.json and BenchmarkDriverPipeline leaves the
# serial-cold / parallel-cold / warm-session comparison in
# BENCH_driver.json for cross-PR comparison.
bench:
	go test -bench=. -benchtime=1x .
	go test -bench=Driver -benchtime=1x ./internal/driver/

# Runtime observability sweep: runs the PolyBench suite under the
# parallel-region profiler and the dynamic DOALL conflict checker,
# leaving the per-kernel profile table (including the tree-vs-bytecode
# engine speedups) in BENCH_runtime.json and a Chrome trace of one
# profiled execution in BENCH_runtime_trace.json. SIZE scales the
# problem dimensions; std makes the engine comparison meaningful.
SIZE ?= std
bench-runtime:
	POLYBENCH_SIZE=$(SIZE) go test -run '^$$' -bench=RuntimeProfile -benchtime=1x -timeout 60m .

# Perf-regression gate: re-measure the runtime profile at the
# baseline's size and fail if the engine geomean or any kernel's
# parallel speedup regressed beyond tolerance vs the checked-in
# BENCH_runtime.json (see scripts/bench_gate.sh for the knobs).
bench-gate:
	sh scripts/bench_gate.sh
